// Package sim is a minimal deterministic discrete-event engine. Events are
// callbacks scheduled at simulated instants; ties are broken first by an
// explicit priority class (so that, e.g., a finishing job releases its
// reserved units before a job starting at the same instant tries to claim
// them) and then by schedule order, making runs bit-for-bit reproducible.
//
// Pending events live in a hierarchical timing wheel by default (see
// wheel.go) with a 4-ary min-heap retained behind SetQueue as the
// differential reference; both mechanisms fire the exact same sequence.
// Event records are slab-allocated in a generation-checked arena and
// recycled through a free list, so a run's event storage is bounded by its
// peak in-flight count and Cancel is an O(1) mark instead of queue surgery.
package sim

import (
	"fmt"

	"github.com/carbonsched/gaia/internal/simtime"
)

// Priority orders events that fire at the same instant: lower values run
// first.
type Priority int

// The scheduler's event classes, in same-instant execution order. Finish
// must precede Start so freed capacity is visible to jobs starting at the
// same minute; Evict precedes Start so a restarted job sees consistent
// state; Arrival runs last so a newly arrived job observes the
// post-transition cluster.
const (
	PriorityFinish Priority = iota
	PriorityEvict
	PriorityStart
	PriorityArrival
	PriorityLow
)

// Action is a pre-allocated event callback: scheduling one stores an
// interface value instead of allocating a closure, so callers that pool
// their action records (the core scheduler's per-job state) run the whole
// event loop allocation-free.
type Action interface {
	Fire()
}

// QueueKind selects the engine's pending-event mechanism.
type QueueKind int

const (
	// QueueWheel, the default: the hierarchical timing wheel — O(1)
	// amortized schedule/cancel/advance.
	QueueWheel QueueKind = iota
	// QueueHeap: the 4-ary min-heap the wheel replaced, kept as the
	// differential reference. Every run fires the exact same event
	// sequence under either kind.
	QueueHeap
)

// Engine is the event loop. The zero value is not usable; call NewEngine.
type Engine struct {
	now      simtime.Time
	seq      int64
	executed int64
	kind     QueueKind

	// arena slab-allocates event records, addressed by index so the
	// backing array can grow and records can recycle through the free
	// list (freeHead, index+1, 0 = empty). See arena.go.
	arena    []event
	freeHead int32

	// queued counts events held by the wheel or heap, including canceled
	// ones not yet reaped.
	queued int

	wheel wheelState
	heap  []int32

	// stream holds pre-sorted events (ScheduleSorted) consumed in order
	// and merged with the queue at pop time. Feeding the known-sorted bulk
	// — a workload's arrivals — through the stream keeps the queue down to
	// the in-flight events.
	stream    []int32
	streamPos int

	// source is the zero-materialization variant of the stream: events are
	// described by index-addressed callbacks and never exist as event
	// records at all (see SetSource).
	source srcState

	// Interrupt probe (SetInterrupt): Run polls check every `every`
	// executed events and stops when it returns an error.
	interruptEvery int64
	interruptCheck func() error
	interruptNext  int64
	interruptErr   error
}

// srcState is the engine's pull-based sorted event source.
type srcState struct {
	n        int
	pos      int
	timeAt   func(i int) simtime.Time
	priority Priority
	fire     func(i int)
}

// NewEngine creates an engine at time 0 using the timing wheel.
func NewEngine() *Engine { return &Engine{} }

// SetQueue selects the pending-event mechanism. It must be called before
// any event is scheduled or executed — switching a live queue would strand
// its contents — and exists so differential tests and benchmarks can run
// the heap reference against the wheel.
func (e *Engine) SetQueue(k QueueKind) {
	if e.seq != 0 || e.executed != 0 {
		panic("sim: SetQueue after scheduling or running")
	}
	e.kind = k
}

// Queue returns the engine's pending-event mechanism.
func (e *Engine) Queue() QueueKind { return e.kind }

// Now returns the current simulated time.
func (e *Engine) Now() simtime.Time { return e.now }

// Executed returns the number of events run so far (canceled events are
// not counted).
func (e *Engine) Executed() int64 { return e.executed }

// Pending returns the number of events still queued. Canceled events not
// yet lazily reaped are included, so this is an upper bound on the events
// that will still fire.
func (e *Engine) Pending() int {
	return e.queued + len(e.stream) - e.streamPos + e.source.n - e.source.pos
}

// SetSource installs a pull-based pre-sorted event source: n events whose
// times are timeAt(0..n-1) in non-decreasing order, all at the given
// priority, fired via fire(i). The engine merges the source with the queue
// (and stream) at each step without ever materializing event records, so
// a million-arrival trace costs zero event storage. Source events win
// ties against queued events at the same (time, priority) — exactly the
// order ScheduleSorted produces, since its events are enqueued (and thus
// sequence-numbered) before any dynamic event. Source events cannot be
// canceled. Calling SetSource replaces any previous source.
func (e *Engine) SetSource(n int, timeAt func(i int) simtime.Time, p Priority, fire func(i int)) {
	if n > 0 && (timeAt == nil || fire == nil) {
		panic("sim: SetSource needs timeAt and fire callbacks")
	}
	e.source = srcState{n: n, timeAt: timeAt, priority: p, fire: fire}
}

// Schedule enqueues fn to run at t with the given priority, returning a
// handle for Cancel/Reschedule. It panics if t is in the past — schedulers
// deriving a start time must clamp to now themselves, and silently
// reordering history would corrupt accounting.
func (e *Engine) Schedule(t simtime.Time, p Priority, fn func()) Handle {
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	h := e.schedule(t, p)
	e.arena[h.idx].fn = fn
	return h
}

// ScheduleAction is Schedule for a pre-allocated Action — no closure is
// created, so pooled action records make scheduling allocation-free.
func (e *Engine) ScheduleAction(t simtime.Time, p Priority, a Action) Handle {
	if a == nil {
		panic("sim: scheduling nil action")
	}
	h := e.schedule(t, p)
	e.arena[h.idx].act = a
	return h
}

// schedule allocates and enqueues a callback-less event at (t, p).
func (e *Engine) schedule(t simtime.Time, p Priority) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	idx := e.alloc()
	ev := &e.arena[idx]
	ev.time, ev.priority, ev.seq = t, p, e.seq
	gen := ev.gen
	e.seq++
	e.qPush(idx)
	return Handle{idx: idx, gen: gen}
}

// ScheduleSorted enqueues fn like Schedule, but onto the engine's
// pre-sorted stream instead of the queue. Successive calls must be in
// non-decreasing (time, priority) order — the natural order of a workload
// trace's arrivals — and the engine merges stream and queue at each step,
// so execution order is exactly what Schedule would produce. It panics on
// an out-of-order call.
func (e *Engine) ScheduleSorted(t simtime.Time, p Priority, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	idx := e.alloc()
	ev := &e.arena[idx]
	ev.time, ev.priority, ev.seq, ev.fn = t, p, e.seq, fn
	gen := ev.gen
	e.seq++
	if n := len(e.stream); n > 0 && e.before(idx, e.stream[n-1]) {
		panic(fmt.Sprintf("sim: ScheduleSorted out of order at %v", t))
	}
	e.stream = append(e.stream, idx)
	return Handle{idx: idx, gen: gen}
}

// Cancel prevents the event identified by h from firing. It returns true
// if the event was pending and is now canceled, false if the handle is
// stale — the event already fired, was already canceled, or h is the zero
// Handle. Cancellation is O(1): the record is marked and reaped lazily
// when the queue next reaches it, with no queue surgery.
func (e *Engine) Cancel(h Handle) bool {
	if h.gen == 0 || h.idx < 0 || int(h.idx) >= len(e.arena) {
		return false
	}
	ev := &e.arena[h.idx]
	if ev.gen != h.gen || ev.canceled {
		return false
	}
	ev.canceled = true
	return true
}

// Reschedule moves the pending event identified by h to a new time and
// priority, returning the replacement handle. Stale handles are reported
// (ok false) rather than panicking, like Cancel. The replacement is a
// fresh event with a new sequence number — exactly what Cancel followed
// by Schedule would produce — so the fire order is identical under wheel
// and heap. Panics if t is in the past, like Schedule.
func (e *Engine) Reschedule(h Handle, t simtime.Time, p Priority) (Handle, bool) {
	if h.gen == 0 || h.idx < 0 || int(h.idx) >= len(e.arena) {
		return Handle{}, false
	}
	old := &e.arena[h.idx]
	if old.gen != h.gen || old.canceled {
		return Handle{}, false
	}
	// Capture the callback before scheduling: the fresh event may grow
	// the arena and move the old record out from under the pointer.
	fn, act := old.fn, old.act
	old.canceled = true
	nh := e.schedule(t, p)
	if fn != nil {
		e.arena[nh.idx].fn = fn
	} else {
		e.arena[nh.idx].act = act
	}
	return nh, true
}

// qPush enqueues an allocated event record into the selected queue.
func (e *Engine) qPush(idx int32) {
	e.queued++
	if e.kind == QueueHeap {
		e.heapPush(&e.heap, idx)
	} else {
		e.wheelPush(idx)
	}
}

// qPeek returns the next live queued event, or -1. Canceled events at the
// head are reaped here, without advancing the clock, under both queue
// kinds — so cancellation is invisible to the fire sequence.
func (e *Engine) qPeek() int32 {
	if e.kind == QueueHeap {
		for len(e.heap) > 0 {
			top := e.heap[0]
			if !e.arena[top].canceled {
				return top
			}
			e.heapPop(&e.heap)
			e.reap(top)
			e.queued--
		}
		return -1
	}
	return e.wheelPeek()
}

// qPop removes and returns the event qPeek just reported.
func (e *Engine) qPop() int32 {
	if e.kind == QueueHeap {
		idx := e.heapPop(&e.heap)
		e.queued--
		return idx
	}
	return e.wheelPop()
}

// SetInterrupt installs a cancellation probe: Run polls check after every
// `every` executed events (minimum 1) and abandons the remaining events
// the first time it returns a non-nil error, which Err then reports. The
// probe exists for long simulations driven by an online service — a
// canceled request must stop costing CPU — and is deliberately coarse:
// probing between events keeps the event loop allocation- and
// branch-cheap, and an uncanceled run executes exactly the same event
// sequence as one with no probe installed. The stride counts fired
// events (Executed), never queue pops or canceled-event reaps, so wheel
// and heap runs probe — and interrupt — at identical points. Pass a nil
// check to remove the probe.
func (e *Engine) SetInterrupt(every int64, check func() error) {
	if every < 1 {
		every = 1
	}
	e.interruptEvery = every
	e.interruptCheck = check
	e.interruptNext = e.executed + every
}

// Err returns the interrupt error that stopped Run early, or nil for a
// run that drained its event queue.
func (e *Engine) Err() error { return e.interruptErr }

// Run executes events until the queue is empty, or until an installed
// interrupt probe reports an error (see SetInterrupt).
func (e *Engine) Run() {
	for e.Pending() > 0 {
		if e.interruptCheck != nil && e.executed >= e.interruptNext {
			if err := e.interruptCheck(); err != nil {
				e.interruptErr = err
				return
			}
			e.interruptNext = e.executed + e.interruptEvery
		}
		e.step()
	}
}

// RunUntil executes events with time <= deadline, then advances the clock
// to deadline. Events scheduled beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline simtime.Time) {
	for t, ok := e.nextTime(); ok && t <= deadline; t, ok = e.nextTime() {
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// nextTime returns the instant of the next live event to fire, if any.
// Canceled heads are reaped in passing so the reported time is one step()
// will actually fire at — RunUntil relies on that to honor its deadline.
func (e *Engine) nextTime() (simtime.Time, bool) {
	for e.streamPos < len(e.stream) && e.arena[e.stream[e.streamPos]].canceled {
		e.reap(e.stream[e.streamPos])
		e.advanceStream()
	}
	var t simtime.Time
	ok := false
	if e.streamPos < len(e.stream) {
		t, ok = e.arena[e.stream[e.streamPos]].time, true
	}
	if q := e.qPeek(); q >= 0 && (!ok || e.arena[q].time < t) {
		t, ok = e.arena[q].time, true
	}
	if s := &e.source; s.pos < s.n {
		if st := s.timeAt(s.pos); !ok || st < t {
			t, ok = st, true
		}
	}
	return t, ok
}

// advanceStream consumes the stream head, resetting the backing slice
// once fully drained so a reused engine does not hold dead capacity.
func (e *Engine) advanceStream() {
	e.streamPos++
	if e.streamPos == len(e.stream) {
		e.stream, e.streamPos = e.stream[:0], 0
	}
}

func (e *Engine) step() {
	// Reap canceled stream heads without advancing the clock, so the
	// stream's live head is what competes against the queue's.
	for e.streamPos < len(e.stream) && e.arena[e.stream[e.streamPos]].canceled {
		e.reap(e.stream[e.streamPos])
		e.advanceStream()
	}
	// Candidate from the materialized queues: stream merged with the
	// wheel or heap by the strict (time, priority, seq) order.
	cand := e.qPeek()
	fromStream := false
	if e.streamPos < len(e.stream) &&
		(cand < 0 || e.before(e.stream[e.streamPos], cand)) {
		cand = e.stream[e.streamPos]
		fromStream = true
	}
	// The source wins ties against the materialized queues: its events
	// are, by construction, enqueued before any dynamic event, so they
	// carry the smaller (conceptual) sequence numbers.
	if s := &e.source; s.pos < s.n {
		t := s.timeAt(s.pos)
		if cand < 0 || t < e.arena[cand].time ||
			(t == e.arena[cand].time && s.priority <= e.arena[cand].priority) {
			if t < e.now {
				panic(fmt.Sprintf("sim: source event at %v before now %v", t, e.now))
			}
			i := s.pos
			s.pos++
			e.now = t
			e.executed++
			s.fire(i)
			return
		}
	}
	if cand < 0 {
		return // only canceled events were pending; reaping was the step
	}
	if fromStream {
		e.advanceStream()
	} else {
		e.qPop()
	}
	ev := &e.arena[cand]
	e.now = ev.time
	e.executed++
	// Capture the callback before reaping: an event scheduled from inside
	// the callback may legitimately reuse this very record.
	fn, act := ev.fn, ev.act
	e.reap(cand)
	if fn != nil {
		fn()
	} else {
		act.Fire()
	}
}
