package sim

import (
	mbits "math/bits"

	"github.com/carbonsched/gaia/internal/simtime"
)

// Hierarchical timing wheel over simulated minutes. Level 0 is
// minute-resolution (one slot per minute, 256 slots ≈ 4.3 simulated hours);
// each outer level widens the slot by 256×, so level 1 spans ~45 days and
// level 2 ~32 years. Events beyond level 2's window go to a comparison-
// ordered overflow heap that is merged at peek time and never cascaded.
//
// Schedule and cancel are O(1); advancing is O(1) amortized — each event is
// touched once per level it cascades through (at most twice) plus once in
// the sort of its drained slot. The engine's strict (time, priority, seq)
// order is restored at drain time: a slot's events are staged into the
// sorted run `cur` and consumed from there, so the fire sequence is
// bit-identical to the heap's.
const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 3
)

// wheelSpan is the width of level l's whole window in minutes: 256 for the
// inner wheel, 256^2 and 256^3 for the outer levels.
func wheelSpan(l int) simtime.Time {
	return 1 << (wheelBits * (l + 1))
}

type wheelState struct {
	// base[l] is the (span-aligned) start of level l's window. Bases only
	// rebase to the window holding the earliest pending wheel event, never
	// eagerly past it, so a stream or source event firing earlier can still
	// schedule into the gap (those pushes land in cur, below).
	base  [wheelLevels]simtime.Time
	heads [wheelLevels][wheelSlots]int32 // intrusive lists, index+1, 0 = empty
	occ   [wheelLevels][wheelSlots / 64]uint64

	// cur is the staged run of due events: the most recently drained slot,
	// sorted by the total event order, consumed from curPos. Pushes at or
	// before the run's last instant are binary-inserted here instead of
	// into a slot, so a drained minute never splits across cur and a slot.
	cur    []int32
	curPos int

	// count tracks events in the levels plus cur (not overflow): it is the
	// advance loop's termination condition and the rebase trigger.
	count int

	// overflow holds events beyond level 2's window, ordered by comparison.
	overflow []int32
}

// wheelPush enqueues an allocated event record.
func (e *Engine) wheelPush(idx int32) {
	w := &e.wheel
	t := e.arena[idx].time
	if w.count == 0 {
		// Nothing pending in the levels or cur: rebase every window to the
		// current instant so the new event lands as deep (fine-grained) as
		// its lead time allows.
		for l := 0; l < wheelLevels; l++ {
			w.base[l] = e.now &^ (wheelSpan(l) - 1)
		}
		if e.wheelPlace(idx, t) {
			w.count++
		}
		return
	}
	if n := len(w.cur); w.curPos < n && t <= e.arena[w.cur[n-1]].time {
		// At or before the staged run's last instant: must be ordered
		// within cur (slots would fire it after the whole run).
		e.curInsert(idx)
		w.count++
		return
	}
	if t < w.base[0] {
		// Before the inner window: the bases have advanced past t (a
		// stream/source event fired earlier and scheduled into the gap).
		// cur doubles as the holding run for these.
		e.curInsert(idx)
		w.count++
		return
	}
	if e.wheelPlace(idx, t) {
		w.count++
	}
}

// wheelPlace files the event into the innermost level whose window covers
// t, or the overflow heap beyond level 2. It reports whether the event
// landed in a level (and therefore counts toward wheelState.count).
func (e *Engine) wheelPlace(idx int32, t simtime.Time) bool {
	w := &e.wheel
	for l := 0; l < wheelLevels; l++ {
		if t < w.base[l]+wheelSpan(l) {
			// Bases are span-aligned, so the masked shift is the offset
			// from base[l] in slot units.
			s := int(t>>(wheelBits*l)) & wheelMask
			e.arena[idx].next = w.heads[l][s]
			w.heads[l][s] = idx + 1
			w.occ[l][s>>6] |= 1 << (uint(s) & 63)
			return true
		}
	}
	e.heapPush(&w.overflow, idx)
	return false
}

// curInsert binary-inserts the event into the unconsumed tail of cur,
// keeping the staged run sorted by the total event order.
func (e *Engine) curInsert(idx int32) {
	w := &e.wheel
	lo, hi := w.curPos, len(w.cur)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if e.before(w.cur[mid], idx) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	w.cur = append(w.cur, 0)
	copy(w.cur[lo+1:], w.cur[lo:])
	w.cur[lo] = idx
}

// wheelPeek returns the next live event index, or -1 if the wheel is
// empty. Canceled events encountered at the heads are reaped here — their
// Cancel was an O(1) mark — and the staged run is refilled from the levels
// as it drains.
func (e *Engine) wheelPeek() int32 {
	w := &e.wheel
	for {
		if w.curPos < len(w.cur) {
			idx := w.cur[w.curPos]
			if e.arena[idx].canceled {
				e.reap(idx)
				e.queued--
				w.count--
				w.curPos++
				continue
			}
			break
		}
		if len(w.cur) > 0 {
			w.cur, w.curPos = w.cur[:0], 0
		}
		if w.count > 0 {
			e.wheelAdvance()
			continue
		}
		break
	}
	cand := int32(-1)
	if w.curPos < len(w.cur) {
		cand = w.cur[w.curPos]
	}
	for len(w.overflow) > 0 {
		top := w.overflow[0]
		if e.arena[top].canceled {
			e.heapPop(&w.overflow)
			e.reap(top)
			e.queued--
			continue
		}
		if cand < 0 || e.before(top, cand) {
			cand = top
		}
		break
	}
	return cand
}

// wheelPop removes and returns the event wheelPeek just reported. Both
// heads are live (peek reaped any canceled ones), so a single comparison
// picks the same winner.
func (e *Engine) wheelPop() int32 {
	w := &e.wheel
	curHead := int32(-1)
	if w.curPos < len(w.cur) {
		curHead = w.cur[w.curPos]
	}
	if len(w.overflow) > 0 && (curHead < 0 || e.before(w.overflow[0], curHead)) {
		idx := e.heapPop(&w.overflow)
		e.queued--
		return idx
	}
	w.curPos++
	if w.curPos == len(w.cur) {
		w.cur, w.curPos = w.cur[:0], 0
	}
	w.count--
	e.queued--
	return curHead
}

// wheelAdvance refills the staged run: it drains the earliest occupied
// level-0 slot, cascading outer-level slots inward as their windows are
// reached. Only called with cur empty and count > 0 — every pending level
// event is at or after base[0], which is at or after everything already
// fired, so draining here can never reorder against the consumed run.
func (e *Engine) wheelAdvance() {
	w := &e.wheel
	for w.count > 0 {
		if s := findSlot(&w.occ[0]); s >= 0 {
			e.drainSlot(s)
			if w.curPos < len(w.cur) {
				return
			}
			continue // slot held only canceled events
		}
		if s := findSlot(&w.occ[1]); s >= 0 {
			w.base[0] = w.base[1] + simtime.Time(s)<<wheelBits
			e.cascade(1, s)
			continue
		}
		if s := findSlot(&w.occ[2]); s >= 0 {
			w.base[1] = w.base[2] + simtime.Time(s)<<(2*wheelBits)
			e.cascade(2, s)
			continue
		}
		panic("sim: wheel count desync")
	}
}

// drainSlot empties level-0 slot s into cur and sorts the run. Canceled
// events are reaped during the walk instead of staged.
func (e *Engine) drainSlot(s int) {
	w := &e.wheel
	link := w.heads[0][s]
	w.heads[0][s] = 0
	w.occ[0][s>>6] &^= 1 << (uint(s) & 63)
	for link != 0 {
		idx := link - 1
		link = e.arena[idx].next // before reap: reap rewrites next
		if e.arena[idx].canceled {
			e.reap(idx)
			e.queued--
			w.count--
			continue
		}
		w.cur = append(w.cur, idx)
	}
	e.sortRun(w.cur)
	w.curPos = 0
}

// cascade redistributes level-l slot s into level l-1, whose base the
// caller has just advanced to cover this slot's window.
func (e *Engine) cascade(l, s int) {
	w := &e.wheel
	link := w.heads[l][s]
	w.heads[l][s] = 0
	w.occ[l][s>>6] &^= 1 << (uint(s) & 63)
	shift := uint(wheelBits * (l - 1))
	for link != 0 {
		idx := link - 1
		link = e.arena[idx].next
		if e.arena[idx].canceled {
			e.reap(idx)
			e.queued--
			w.count--
			continue
		}
		d := int(e.arena[idx].time>>shift) & wheelMask
		e.arena[idx].next = w.heads[l-1][d]
		w.heads[l-1][d] = idx + 1
		w.occ[l-1][d>>6] |= 1 << (uint(d) & 63)
	}
}

// findSlot returns the lowest set slot in an occupancy bitmap, or -1.
// Scanning from bit 0 is correct because every pending level event is at
// or after its level's base.
func findSlot(occ *[wheelSlots / 64]uint64) int {
	for i, word := range occ {
		if word != 0 {
			return i<<6 + mbits.TrailingZeros64(word)
		}
	}
	return -1
}

// sortRun orders a staged run by the engine's total event order: a
// hand-rolled quicksort (median-of-three pivot, insertion sort for short
// runs) so a fleet-wide same-minute burst drains in O(k log k) without
// sort.Slice's closure allocation.
func (e *Engine) sortRun(a []int32) {
	for len(a) > 24 {
		m, hi := len(a)/2, len(a)-1
		if e.before(a[m], a[0]) {
			a[0], a[m] = a[m], a[0]
		}
		if e.before(a[hi], a[m]) {
			a[m], a[hi] = a[hi], a[m]
			if e.before(a[m], a[0]) {
				a[0], a[m] = a[m], a[0]
			}
		}
		pivot := a[m]
		i, j := 0, hi
		for i <= j {
			for e.before(a[i], pivot) {
				i++
			}
			for e.before(pivot, a[j]) {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half, iterate on the larger: O(log k)
		// stack depth worst case.
		if j < len(a)-i {
			e.sortRun(a[:j+1])
			a = a[i:]
		} else {
			e.sortRun(a[i:])
			a = a[:j+1]
		}
	}
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && e.before(x, a[j]) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}
