package sim

import (
	"errors"
	"testing"

	"github.com/carbonsched/gaia/internal/simtime"
)

// TestInterruptStopsRun verifies that an interrupt probe abandons the
// remaining events and surfaces its error through Err.
func TestInterruptStopsRun(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 0; i < 100; i++ {
		e.Schedule(simtime.Time(i), PriorityStart, func() { fired++ })
	}
	wantErr := errors.New("canceled")
	e.SetInterrupt(10, func() error {
		if fired >= 30 {
			return wantErr
		}
		return nil
	})
	e.Run()
	if !errors.Is(e.Err(), wantErr) {
		t.Fatalf("Err() = %v, want %v", e.Err(), wantErr)
	}
	if fired >= 100 {
		t.Fatalf("run was not interrupted: fired all %d events", fired)
	}
	// The probe fires on stride boundaries, so at most one stride of
	// events runs past the trigger point.
	if fired > 40 {
		t.Fatalf("interrupt too late: %d events fired", fired)
	}
}

// TestInterruptNilProbeAndCleanRun verifies a probe that never trips
// leaves the run identical to an uninstrumented one, and that Err stays
// nil.
func TestInterruptNilProbeAndCleanRun(t *testing.T) {
	run := func(install bool) (int, error) {
		e := NewEngine()
		fired := 0
		for i := 0; i < 57; i++ {
			e.Schedule(simtime.Time(i%7), PriorityStart, func() { fired++ })
		}
		if install {
			e.SetInterrupt(3, func() error { return nil })
		}
		e.Run()
		return fired, e.Err()
	}
	plain, err := run(false)
	if err != nil {
		t.Fatalf("plain run Err() = %v", err)
	}
	probed, err := run(true)
	if err != nil {
		t.Fatalf("probed run Err() = %v", err)
	}
	if plain != probed {
		t.Fatalf("probe changed execution: %d vs %d events", plain, probed)
	}
}

// TestInterruptProbesAtIdenticalPointsAcrossQueues pins the satellite
// guarantee that the probe stride counts fired events, never queue pops
// or canceled-event reaps: a run salted with cancellations must probe —
// and therefore interrupt — at the exact same executed counts under the
// wheel and the heap.
func TestInterruptProbesAtIdenticalPointsAcrossQueues(t *testing.T) {
	run := func(kind QueueKind) (probes []int64, fired int) {
		e := NewEngine()
		e.SetQueue(kind)
		// Interleave live events with canceled ones so the two queue
		// mechanisms reap at different internal moments.
		for i := 0; i < 200; i++ {
			h := e.Schedule(simtime.Time(i), PriorityStart, func() { fired++ })
			if i%3 == 1 {
				e.Cancel(h)
			}
		}
		e.SetInterrupt(7, func() error {
			probes = append(probes, e.Executed())
			if len(probes) == 5 {
				return errors.New("stop")
			}
			return nil
		})
		e.Run()
		return probes, fired
	}
	wheelProbes, wheelFired := run(QueueWheel)
	heapProbes, heapFired := run(QueueHeap)
	if len(wheelProbes) != len(heapProbes) {
		t.Fatalf("probe counts differ: wheel %d, heap %d", len(wheelProbes), len(heapProbes))
	}
	for i := range wheelProbes {
		if wheelProbes[i] != heapProbes[i] {
			t.Fatalf("probe %d at different executed counts: wheel %d, heap %d",
				i, wheelProbes[i], heapProbes[i])
		}
	}
	if wheelFired != heapFired {
		t.Fatalf("interrupted runs fired different counts: wheel %d, heap %d", wheelFired, heapFired)
	}
}

// TestInterruptMinimumStride pins the every<1 clamp.
func TestInterruptMinimumStride(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 0; i < 10; i++ {
		e.Schedule(simtime.Time(i), PriorityStart, func() { fired++ })
	}
	calls := 0
	e.SetInterrupt(0, func() error {
		calls++
		if fired >= 2 {
			return errors.New("stop")
		}
		return nil
	})
	e.Run()
	if fired != 2 {
		t.Fatalf("fired %d events, want exactly 2 with stride-1 probe", fired)
	}
	if calls == 0 {
		t.Fatal("probe never called")
	}
}
