package sim

import "github.com/carbonsched/gaia/internal/simtime"

// Handle identifies a scheduled event for Cancel and Reschedule. It is a
// value (arena index + generation stamp), not a pointer: holding one past
// the event's firing is always safe, because the generation check makes a
// stale handle miss instead of reaching the slot's next tenant. The zero
// Handle is invalid and never matches anything.
type Handle struct {
	idx int32
	gen uint32
}

// Valid reports whether h was produced by a Schedule call. It does not
// say whether the event is still pending — a fired event's handle stays
// Valid but no longer cancels.
func (h Handle) Valid() bool { return h.gen != 0 }

// event is one arena slot: a scheduled callback plus the intrusive link
// that threads it through a wheel slot list or the free list. Events are
// addressed by arena index, never by long-lived pointer, so the arena can
// grow (append moves the backing array) and recycle records freely.
type event struct {
	time     simtime.Time
	priority Priority
	seq      int64
	fn       func()
	act      Action
	// next links the event into a wheel slot list or the free list,
	// storing index+1 so the zero value terminates.
	next int32
	// gen is the slot's tenancy counter: a Handle is live iff its gen
	// matches. Bumped on every reap, so canceling after the fact is a
	// detectable no-op instead of heap corruption.
	gen      uint32
	canceled bool
}

// before is the engine's total event order: (time, priority, seq). seq is
// unique, so the order is strict and the execution sequence is independent
// of queue layout — the property that lets the wheel and the heap produce
// bit-identical runs.
func (e *Engine) before(a, b int32) bool {
	ea, eb := &e.arena[a], &e.arena[b]
	if ea.time != eb.time {
		return ea.time < eb.time
	}
	if ea.priority != eb.priority {
		return ea.priority < eb.priority
	}
	return ea.seq < eb.seq
}

// alloc takes an arena slot from the free list, growing the arena only
// when no fired record is available for reuse: a long run's event storage
// is bounded by its peak in-flight count, not its total event count.
func (e *Engine) alloc() int32 {
	if e.freeHead != 0 {
		idx := e.freeHead - 1
		e.freeHead = e.arena[idx].next
		return idx
	}
	e.arena = append(e.arena, event{gen: 1})
	return int32(len(e.arena) - 1)
}

// reap retires a fired, canceled or abandoned event record: the slot's
// generation advances (invalidating every outstanding Handle to it) and
// the record joins the free list for the next alloc.
func (e *Engine) reap(idx int32) {
	ev := &e.arena[idx]
	ev.fn, ev.act = nil, nil
	ev.canceled = false
	ev.gen++
	if ev.gen == 0 { // generation wrap: keep 0 meaning "never a handle"
		ev.gen = 1
	}
	ev.next = e.freeHead
	e.freeHead = idx + 1
}
