package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/carbonsched/gaia/internal/simtime"
)

// TestStreamMergesIdenticallyWithHeap feeds the same event set through two
// engines — one with the pre-sorted bulk on the stream, one with everything
// heaped — and requires the execution order to be identical. Callbacks
// re-schedule follow-up events to exercise the merge while both sources are
// non-empty.
func TestStreamMergesIdenticallyWithHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	type arrival struct {
		at simtime.Time
		id int
	}
	arrivals := make([]arrival, 200)
	at := simtime.Time(0)
	for i := range arrivals {
		at = at.Add(simtime.Duration(rng.Intn(50))) // non-decreasing, with ties
		arrivals[i] = arrival{at: at, id: i}
	}

	run := func(useStream bool) []int {
		var order []int
		e := NewEngine()
		record := func(id int) func() {
			return func() {
				order = append(order, id)
				// Follow-up events land in the heap of both engines and
				// interleave with later stream entries.
				if id%3 == 0 {
					e.Schedule(e.Now().Add(simtime.Duration(id%7)), PriorityStart, func() {
						order = append(order, 10000+id)
					})
				}
			}
		}
		for _, a := range arrivals {
			if useStream {
				e.ScheduleSorted(a.at, PriorityArrival, record(a.id))
			} else {
				e.Schedule(a.at, PriorityArrival, record(a.id))
			}
		}
		e.Run()
		return order
	}

	if got, want := run(true), run(false); !reflect.DeepEqual(got, want) {
		t.Fatalf("stream execution order diverges from heap order:\n stream = %v\n heap   = %v", got, want)
	}
}

func TestScheduleSortedPanicsOutOfOrder(t *testing.T) {
	e := NewEngine()
	e.ScheduleSorted(10, PriorityArrival, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order ScheduleSorted did not panic")
		}
	}()
	e.ScheduleSorted(5, PriorityArrival, func() {})
}

func TestScheduleSortedCancelAndPending(t *testing.T) {
	e := NewEngine()
	var fired int
	h := e.ScheduleSorted(5, PriorityArrival, func() { fired++ })
	e.ScheduleSorted(6, PriorityArrival, func() { fired++ })
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	if !e.Cancel(h) {
		t.Fatal("Cancel of a pending stream event should report true")
	}
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (canceled stream event must not run)", fired)
	}
	if e.Executed() != 1 {
		t.Fatalf("Executed = %d, want 1", e.Executed())
	}
}
