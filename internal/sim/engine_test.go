package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/carbonsched/gaia/internal/simtime"
)

func TestRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []simtime.Time
	for _, tm := range []simtime.Time{50, 10, 30, 20, 40} {
		tm := tm
		e.Schedule(tm, PriorityLow, func() { got = append(got, tm) })
	}
	e.Run()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Errorf("events ran out of order: %v", got)
	}
	if e.Now() != 50 {
		t.Errorf("Now = %v", e.Now())
	}
	if e.Executed() != 5 {
		t.Errorf("Executed = %d", e.Executed())
	}
}

func TestPriorityOrderingAtSameInstant(t *testing.T) {
	e := NewEngine()
	var got []Priority
	// Schedule in reverse priority order; execution must follow priority.
	for _, p := range []Priority{PriorityArrival, PriorityStart, PriorityEvict, PriorityFinish} {
		p := p
		e.Schedule(100, p, func() { got = append(got, p) })
	}
	e.Run()
	want := []Priority{PriorityFinish, PriorityEvict, PriorityStart, PriorityArrival}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestFIFOWithinSamePriority(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, PriorityStart, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-priority events not FIFO: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	h := e.Schedule(10, PriorityLow, func() { ran = true })
	if !e.Cancel(h) {
		t.Error("Cancel of a pending event should report true")
	}
	if e.Cancel(h) {
		t.Error("second Cancel should report false")
	}
	e.Run()
	if ran {
		t.Error("canceled event must not run")
	}
	if e.Executed() != 0 {
		t.Errorf("Executed = %d", e.Executed())
	}
}

func TestCancelStaleHandle(t *testing.T) {
	e := NewEngine()
	h := e.Schedule(10, PriorityLow, func() {})
	e.Run()
	if e.Cancel(h) {
		t.Error("Cancel after firing should report false")
	}
	if e.Cancel(Handle{}) {
		t.Error("Cancel of the zero Handle should report false")
	}
	// The fired record recycles into a new event; the old handle's stale
	// generation must not cancel the new tenant.
	ran := false
	h2 := e.Schedule(20, PriorityLow, func() { ran = true })
	if h2.idx != h.idx {
		t.Fatalf("expected record reuse: old idx %d, new idx %d", h.idx, h2.idx)
	}
	if e.Cancel(h) {
		t.Error("stale handle canceled the recycled record's new tenant")
	}
	e.Run()
	if !ran {
		t.Error("recycled event did not run")
	}
}

func TestReschedule(t *testing.T) {
	e := NewEngine()
	var got []simtime.Time
	h := e.Schedule(10, PriorityLow, func() { got = append(got, e.Now()) })
	nh, ok := e.Reschedule(h, 30, PriorityLow)
	if !ok {
		t.Fatal("Reschedule of a pending event should report true")
	}
	if e.Cancel(h) {
		t.Error("original handle should be dead after Reschedule")
	}
	e.Schedule(20, PriorityLow, func() { got = append(got, e.Now()) })
	e.Run()
	want := []simtime.Time{20, 30}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %v, want %v", got, want)
	}
	if _, ok := e.Reschedule(nh, 40, PriorityLow); ok {
		t.Error("Reschedule after firing should report false")
	}
	if e.Executed() != 2 {
		t.Errorf("Executed = %d (canceled originals must not count)", e.Executed())
	}
}

func TestSchedulingFromCallback(t *testing.T) {
	e := NewEngine()
	var got []simtime.Time
	e.Schedule(10, PriorityLow, func() {
		got = append(got, e.Now())
		e.Schedule(20, PriorityLow, func() { got = append(got, e.Now()) })
		// Same-instant follow-up is allowed.
		e.Schedule(10, PriorityLow, func() { got = append(got, e.Now()) })
	})
	e.Run()
	want := []simtime.Time{10, 10, 20}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, PriorityLow, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.Schedule(5, PriorityLow, func() {})
	})
	e.Run()
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback should panic")
		}
	}()
	NewEngine().Schedule(1, PriorityLow, nil)
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []simtime.Time
	for _, tm := range []simtime.Time{10, 20, 30} {
		tm := tm
		e.Schedule(tm, PriorityLow, func() { ran = append(ran, tm) })
	}
	e.RunUntil(20)
	if len(ran) != 2 {
		t.Fatalf("ran %d events, want 2", len(ran))
	}
	if e.Now() != 20 {
		t.Errorf("Now = %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d", e.Pending())
	}
	// Advancing past everything drains and moves the clock.
	e.RunUntil(100)
	if len(ran) != 3 || e.Now() != 100 {
		t.Errorf("after drain: ran=%d now=%v", len(ran), e.Now())
	}
}

// Property: any random schedule executes in non-decreasing (time, priority)
// order and the clock never goes backwards.
func TestOrderingProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		type fired struct {
			t simtime.Time
			p Priority
		}
		var log []fired
		for i := 0; i < int(n); i++ {
			tm := simtime.Time(rng.Intn(100))
			p := Priority(rng.Intn(5))
			e.Schedule(tm, p, func() { log = append(log, fired{e.Now(), p}) })
		}
		e.Run()
		for i := 1; i < len(log); i++ {
			if log[i].t < log[i-1].t {
				return false
			}
			if log[i].t == log[i-1].t && log[i].p < log[i-1].p {
				return false
			}
		}
		return len(log) == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		var got []int
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 200; i++ {
			i := i
			e.Schedule(simtime.Time(rng.Intn(50)), Priority(rng.Intn(5)), func() {
				got = append(got, i)
			})
		}
		e.Run()
		return got
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("replay diverged")
		}
	}
}
