package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/carbonsched/gaia/internal/simtime"
)

// runBothQueues executes the same scenario under the wheel and the heap
// and fails the test unless the two fire logs are identical — the
// differential pin behind every wheel-path change.
func runBothQueues(t *testing.T, scenario func(e *Engine) []int64) {
	t.Helper()
	var logs [2][]int64
	for i, kind := range []QueueKind{QueueWheel, QueueHeap} {
		e := NewEngine()
		e.SetQueue(kind)
		logs[i] = scenario(e)
	}
	if !reflect.DeepEqual(logs[0], logs[1]) {
		t.Fatalf("wheel diverges from heap:\n wheel = %v\n heap  = %v", logs[0], logs[1])
	}
}

// TestWheelHeapFuzzDifferential interprets a deterministic random op
// stream — schedules at deltas straddling every wheel level, cancels, and
// reschedules, many issued from inside callbacks — against both queue
// kinds and requires bit-identical fire sequences. The op stream itself
// stays in lockstep only while the fire orders match, so any divergence
// compounds and is caught.
func TestWheelHeapFuzzDifferential(t *testing.T) {
	// Deltas chosen to land on and around slot, level, and overflow
	// boundaries (level 0 spans 256 min, level 1 65536, level 2 1<<24).
	deltas := []int64{0, 1, 2, 7, 59, 60, 254, 255, 256, 257, 1439, 1440,
		65535, 65536, 65537, 1<<24 - 1, 1 << 24, 1<<24 + 1, 525600}
	for seed := int64(0); seed < 10; seed++ {
		runBothQueues(t, func(e *Engine) []int64 {
			rng := rand.New(rand.NewSource(seed))
			var log []int64
			var handles []Handle
			nextID := 0
			var fire func(id int)
			schedule := func() {
				id := nextID
				nextID++
				d := simtime.Duration(deltas[rng.Intn(len(deltas))] + int64(rng.Intn(50)))
				h := e.Schedule(e.Now().Add(d), Priority(rng.Intn(5)), func() { fire(id) })
				handles = append(handles, h)
			}
			fire = func(id int) {
				log = append(log, int64(id), int64(e.Now()))
				for k := rng.Intn(4); k > 0; k-- {
					switch rng.Intn(4) {
					case 0, 1:
						schedule()
					case 2:
						e.Cancel(handles[rng.Intn(len(handles))])
					case 3:
						j := rng.Intn(len(handles))
						d := simtime.Duration(deltas[rng.Intn(len(deltas))])
						if nh, ok := e.Reschedule(handles[j], e.Now().Add(d), Priority(rng.Intn(5))); ok {
							handles[j] = nh
						}
					}
				}
			}
			for i := 0; i < 100; i++ {
				schedule()
			}
			e.Run()
			return log
		})
	}
}

// TestSameMinuteCancelThenReschedule pins the order when a canceled
// event's replacement lands back on the very minute that is already
// staged for firing: the replacement must slot in by its fresh sequence
// number, identically under wheel and heap.
func TestSameMinuteCancelThenReschedule(t *testing.T) {
	runBothQueues(t, func(e *Engine) []int64 {
		var log []int64
		mark := func(id int64) func() {
			return func() { log = append(log, id, int64(e.Now())) }
		}
		victim := e.Schedule(100, PriorityStart, mark(1))
		e.Schedule(100, PriorityStart, mark(2))
		e.Schedule(100, PriorityFinish, mark(3))
		e.Schedule(50, PriorityLow, func() {
			log = append(log, 0, int64(e.Now()))
			// Cancel, then re-create at the same minute: the replacement
			// carries a later seq than ids 2 and 3, so it must fire last
			// among the same-priority events at t=100.
			e.Cancel(victim)
			e.Schedule(100, PriorityStart, mark(4))
		})
		e.Run()
		return log
	})
	// Also via Reschedule to the identical (time, priority).
	runBothQueues(t, func(e *Engine) []int64 {
		var log []int64
		mark := func(id int64) func() {
			return func() { log = append(log, id, int64(e.Now())) }
		}
		victim := e.Schedule(100, PriorityStart, mark(1))
		e.Schedule(100, PriorityStart, mark(2))
		e.Schedule(50, PriorityLow, func() {
			if _, ok := e.Reschedule(victim, 100, PriorityStart); !ok {
				panic("reschedule failed")
			}
		})
		e.Run()
		return log
	})
}

// TestRescheduleToCurrentInstant moves a pending event to the engine's
// current instant from inside a firing callback: it must run within the
// same minute, after everything already ahead of it in the total order.
func TestRescheduleToCurrentInstant(t *testing.T) {
	runBothQueues(t, func(e *Engine) []int64 {
		var log []int64
		mark := func(id int64) func() {
			return func() { log = append(log, id, int64(e.Now())) }
		}
		far := e.Schedule(500, PriorityLow, mark(9))
		e.Schedule(100, PriorityStart, mark(1))
		e.Schedule(100, PriorityFinish, func() {
			log = append(log, 0, int64(e.Now()))
			// Pull the far event into this very instant, at both an
			// earlier and the same priority class.
			if nh, ok := e.Reschedule(far, e.Now(), PriorityStart); ok {
				far = nh
			}
			if nh, ok := e.Reschedule(far, e.Now(), PriorityFinish); ok {
				far = nh
			}
		})
		e.Run()
		return log
	})
}

// TestWheelOverflowBoundaries schedules events exactly on and around each
// wheel level's window edge — including a trace-horizon year out, far in
// the overflow region — and requires the fire order to match the heap's.
func TestWheelOverflowBoundaries(t *testing.T) {
	edges := []int64{0, 1, 255, 256, 257, 65535, 65536, 65537,
		1<<24 - 1, 1 << 24, 1<<24 + 1, 525600, 2 * 525600}
	runBothQueues(t, func(e *Engine) []int64 {
		var log []int64
		// Scheduled far-to-near so every deep event is pushed while the
		// wheel's windows are anchored at 0.
		for i := len(edges) - 1; i >= 0; i-- {
			tm := simtime.Time(edges[i])
			e.Schedule(tm, PriorityStart, func() { log = append(log, int64(e.Now())) })
		}
		// A mid-run burst forces a rebase after the wheel has drained.
		e.Schedule(525600, PriorityFinish, func() {
			for _, d := range []simtime.Duration{0, 1, 256, 65536} {
				e.Schedule(e.Now().Add(d), PriorityLow, func() { log = append(log, int64(e.Now())) })
			}
		})
		e.Run()
		return log
	})
}

// TestSetQueueAfterSchedulingPanics pins the guard: the queue kind is
// fixed once events exist.
func TestSetQueueAfterSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, PriorityLow, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("SetQueue after scheduling should panic")
		}
	}()
	e.SetQueue(QueueHeap)
}
