package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/carbonsched/gaia/internal/simtime"
)

// TestSourceMergesIdenticallyWithStream feeds the same arrival set through
// three engines — pull-based source, pre-sorted stream, and plain heap —
// and requires identical execution orders. Callbacks re-schedule follow-up
// events at colliding instants to exercise tie-breaking while the source
// is still non-empty.
func TestSourceMergesIdenticallyWithStream(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	times := make([]simtime.Time, 300)
	at := simtime.Time(0)
	for i := range times {
		at = at.Add(simtime.Duration(rng.Intn(4))) // dense ties
		times[i] = at
	}

	type mode int
	const (
		useSource mode = iota
		useStream
		useWheel
		useHeap
	)
	run := func(m mode) []int {
		var order []int
		e := NewEngine()
		if m == useHeap {
			e.SetQueue(QueueHeap)
		}
		record := func(id int) {
			order = append(order, id)
			if id%3 == 0 {
				// Follow-ups land in the heap at the same instant as later
				// arrivals, at both lower and higher priorities.
				e.Schedule(e.Now().Add(simtime.Duration(id%5)), PriorityStart, func() {
					order = append(order, 10000+id)
				})
				e.Schedule(e.Now().Add(simtime.Duration(id%5)), PriorityLow, func() {
					order = append(order, 20000+id)
				})
			}
		}
		switch m {
		case useSource:
			e.SetSource(len(times), func(i int) simtime.Time { return times[i] },
				PriorityArrival, record)
		case useStream:
			for i, at := range times {
				i := i
				e.ScheduleSorted(at, PriorityArrival, func() { record(i) })
			}
		case useWheel, useHeap:
			for i, at := range times {
				i := i
				e.Schedule(at, PriorityArrival, func() { record(i) })
			}
		}
		e.Run()
		return order
	}

	want := run(useHeap)
	if got := run(useWheel); !reflect.DeepEqual(got, want) {
		t.Fatalf("wheel order diverges from heap order:\n wheel = %v\n heap  = %v", got, want)
	}
	if got := run(useSource); !reflect.DeepEqual(got, want) {
		t.Fatalf("source order diverges from heap order:\n source = %v\n heap   = %v", got, want)
	}
	if got := run(useStream); !reflect.DeepEqual(got, want) {
		t.Fatalf("stream order diverges from heap order:\n stream = %v\n heap   = %v", got, want)
	}
}

// TestSourcePendingAndRunUntil checks that source events count as pending
// and respect RunUntil deadlines.
func TestSourcePendingAndRunUntil(t *testing.T) {
	e := NewEngine()
	times := []simtime.Time{5, 10, 15}
	var fired []int
	e.SetSource(len(times), func(i int) simtime.Time { return times[i] },
		PriorityArrival, func(i int) { fired = append(fired, i) })
	if e.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", e.Pending())
	}
	e.RunUntil(10)
	if want := []int{0, 1}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %v, want 10", e.Now())
	}
	e.Run()
	if len(fired) != 3 || e.Pending() != 0 {
		t.Fatalf("after Run: fired = %v, pending = %d", fired, e.Pending())
	}
}

// actionRecorder implements Action.
type actionRecorder struct {
	order *[]int
	id    int
}

func (a *actionRecorder) Fire() { *a.order = append(*a.order, a.id) }

// TestScheduleActionOrdering interleaves closure and action events and
// checks they obey the same (time, priority, seq) order.
func TestScheduleActionOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(5, PriorityStart, func() { order = append(order, 1) })
	e.ScheduleAction(5, PriorityFinish, &actionRecorder{&order, 0})
	e.ScheduleAction(5, PriorityStart, &actionRecorder{&order, 2}) // same (t,p) as id 1, later seq
	e.Run()
	if want := []int{0, 1, 2}; !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestArenaRecyclingPreservesOrder verifies that arena recycling — which
// reuses a fired record for an event scheduled from inside its own
// callback — never perturbs execution order, and that canceled events
// still never fire, under both queue kinds.
func TestArenaRecyclingPreservesOrder(t *testing.T) {
	run := func(kind QueueKind) []int {
		e := NewEngine()
		e.SetQueue(kind)
		var order []int
		for i := 0; i < 50; i++ {
			i := i
			e.Schedule(simtime.Time(i), PriorityStart, func() {
				order = append(order, i)
				// Schedule from inside a callback: this may reuse the
				// record currently firing.
				e.Schedule(simtime.Time(i+100), PriorityFinish, func() {
					order = append(order, 1000+i)
				})
			})
		}
		h := e.Schedule(60, PriorityStart, func() { order = append(order, -1) })
		e.Cancel(h)
		e.Run()
		return order
	}
	want := run(QueueHeap)
	got := run(QueueWheel)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("wheel order diverges from heap:\n wheel = %v\n heap  = %v", got, want)
	}
	for _, id := range got {
		if id == -1 {
			t.Fatal("canceled event fired")
		}
	}
}

// TestArenaBoundsStorage pins the point of the free-list arena: a long
// sequential chain of events reuses one record instead of growing storage
// with the total event count.
func TestArenaBoundsStorage(t *testing.T) {
	e := NewEngine()
	var n int
	var step func()
	step = func() {
		n++
		if n < 10000 {
			e.Schedule(e.Now().Add(1), PriorityStart, step)
		}
	}
	e.Schedule(0, PriorityStart, step)
	e.Run()
	if n != 10000 {
		t.Fatalf("ran %d events", n)
	}
	if got := e.seq; got != 10000 {
		t.Fatalf("seq = %d, want 10000", got)
	}
	// One arena record covers the whole chain when records recycle.
	if len(e.arena) != 1 {
		t.Fatalf("arena holds %d records, want 1", len(e.arena))
	}
}
