package workload

import (
	"math"
	"math/rand"
	"testing"

	"github.com/carbonsched/gaia/internal/simtime"
)

func TestPoissonSectionThree(t *testing.T) {
	spec := SectionThreeWorkload()
	tr := spec.Generate(rand.New(rand.NewSource(1)), 30*simtime.Day)
	// Mean demand should be ≈ meanLength/meanInterarrival × CPUs = 5.
	d := tr.MeanDemand(30 * simtime.Day)
	if d < 4 || d > 6 {
		t.Errorf("Poisson mean demand = %v, want ≈5", d)
	}
	ml := tr.MeanLength().Hours()
	if ml < 3.4 || ml > 4.6 {
		t.Errorf("Poisson mean length = %vh, want ≈4", ml)
	}
	for _, j := range tr.Jobs {
		if j.CPUs != 1 {
			t.Fatal("Section-3 jobs are 1 CPU")
		}
	}
}

func TestPoissonEmptyHorizon(t *testing.T) {
	tr := SectionThreeWorkload().Generate(rand.New(rand.NewSource(1)), 0)
	if tr.Len() != 0 {
		t.Errorf("zero horizon produced %d jobs", tr.Len())
	}
}

func TestGenerateByCount(t *testing.T) {
	fam := AlibabaPAI()
	tr := fam.GenerateByCount(rand.New(rand.NewSource(1)), 5000, 7*simtime.Day)
	if tr.Len() != 5000 {
		t.Fatalf("GenerateByCount produced %d jobs", tr.Len())
	}
	for _, j := range tr.Jobs {
		if j.Arrival < 0 || j.Arrival >= simtime.Time(7*simtime.Day) {
			t.Fatal("arrival outside horizon")
		}
		if j.Length < fam.MinLen || j.Length > fam.MaxLen {
			t.Fatalf("length %v outside [%v, %v]", j.Length, fam.MinLen, fam.MaxLen)
		}
		if j.CPUs < 1 || j.CPUs > 100 {
			t.Fatalf("cpus %d out of range", j.CPUs)
		}
	}
	if empty := fam.GenerateByCount(rand.New(rand.NewSource(1)), 0, simtime.Day); empty.Len() != 0 {
		t.Error("n=0 should be empty")
	}
}

func TestAlibabaLengthShape(t *testing.T) {
	// Paper (Figures 5a, 9): roughly half the jobs are under an hour; a
	// small share exceeds 24 h; medium jobs carry most compute.
	tr := AlibabaPAI().GenerateByCount(rand.New(rand.NewSource(2)), 30000, simtime.Year)
	cdf := tr.LengthCDF()
	under1h := cdf.At(60)
	if under1h < 0.35 || under1h > 0.65 {
		t.Errorf("share of <1h jobs = %v, want ≈0.5", under1h)
	}
	over24h := 1 - cdf.At(24*60)
	if over24h < 0.01 || over24h > 0.15 {
		t.Errorf("share of >24h jobs = %v, want small but nonzero", over24h)
	}
}

func TestMustangRespectsCap(t *testing.T) {
	tr := MustangHPC().GenerateByCount(rand.New(rand.NewSource(3)), 20000, simtime.Year)
	for _, j := range tr.Jobs {
		if j.Length > 16*simtime.Hour {
			t.Fatalf("Mustang job length %v exceeds 16h cap", j.Length)
		}
	}
}

func TestAzureHasMultiDayTail(t *testing.T) {
	tr := AzureVM().GenerateByCount(rand.New(rand.NewSource(4)), 30000, simtime.Year)
	over24 := 1 - tr.LengthCDF().At(24*60)
	if over24 < 0.05 {
		t.Errorf("Azure >24h share = %v, want a substantial tail", over24)
	}
}

func TestDemandCVContrast(t *testing.T) {
	// §6.4.4: demand CV ≈0.8 for Mustang, ≈0.3 for Azure.
	rng := rand.New(rand.NewSource(5))
	horizon := 60 * simtime.Day
	mus := MustangHPC().GenerateByDemand(rng, 468, horizon)
	az := AzureVM().GenerateByDemand(rand.New(rand.NewSource(6)), 142, horizon)
	cvM := mus.DemandCV(horizon)
	cvA := az.DemandCV(horizon)
	if cvM < 0.45 || cvM > 1.3 {
		t.Errorf("Mustang demand CV = %v, want ≈0.8", cvM)
	}
	if cvA < 0.1 || cvA > 0.5 {
		t.Errorf("Azure demand CV = %v, want ≈0.3", cvA)
	}
	if cvM <= cvA {
		t.Errorf("Mustang CV %v should exceed Azure CV %v", cvM, cvA)
	}
}

func TestGenerateByDemandHitsTarget(t *testing.T) {
	horizon := 60 * simtime.Day
	for _, fam := range Families() {
		tr := fam.GenerateByDemand(rand.New(rand.NewSource(7)), 100, horizon)
		got := tr.MeanDemand(horizon)
		if math.Abs(got-100)/100 > 0.2 {
			t.Errorf("%s: mean demand %v, want ≈100", fam.Name, got)
		}
	}
	empty := AlibabaPAI().GenerateByDemand(rand.New(rand.NewSource(7)), 0, horizon)
	if empty.Len() != 0 {
		t.Error("target=0 should be empty")
	}
}

func TestWeekVariantCapsCPUs(t *testing.T) {
	tr := AlibabaPAIWeek().GenerateByCount(rand.New(rand.NewSource(8)), 1000, simtime.Week)
	for _, j := range tr.Jobs {
		if j.CPUs > 4 {
			t.Fatalf("week trace job with %d CPUs", j.CPUs)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := AlibabaPAI().GenerateByCount(rand.New(rand.NewSource(9)), 500, simtime.Week)
	b := AlibabaPAI().GenerateByCount(rand.New(rand.NewSource(9)), 500, simtime.Week)
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatal("same seed must generate identical traces")
		}
	}
}

func TestFamiliesList(t *testing.T) {
	fams := Families()
	if len(fams) != 3 {
		t.Fatalf("Families = %d entries", len(fams))
	}
	want := []string{"mustang", "alibaba", "azure"}
	for i, f := range fams {
		if f.Name != want[i] {
			t.Errorf("family %d = %q, want %q", i, f.Name, want[i])
		}
	}
}
