package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/stats"
)

// Family describes a synthetic workload family: a job-length law, a CPU
// demand law, and the trace-construction length filter. It is the
// stand-in for one production trace (Alibaba-PAI, Azure-VM, Mustang-HPC);
// see DESIGN.md §3 for the calibration rationale.
type Family struct {
	Name string
	// NewLength builds the job-length distribution, in minutes.
	NewLength func(rng *rand.Rand) stats.Distribution
	// NewCPUs builds the per-job CPU demand sampler.
	NewCPUs func(rng *rand.Rand) func() int
	// MinLen/MaxLen bound accepted job lengths; out-of-range draws are
	// rejected and redrawn (the paper drops <5 min and >3 day jobs).
	MinLen, MaxLen simtime.Duration
	// NewRates optionally builds a per-hour relative arrival rate for a
	// horizon of the given number of hours; nil means homogeneous
	// arrivals. Non-uniform rates reproduce the demand burstiness of
	// production traces (Mustang's demand CV ≈0.8 vs Azure's ≈0.3).
	NewRates func(rng *rand.Rand, hours int) []float64
	// Users is the number of synthetic submitting accounts; jobs are
	// attributed Zipf-style (a few heavy users dominate, as in
	// production traces). 0 leaves User empty.
	Users int
}

// sampleUser draws a user ID with a Zipf-like law over f.Users accounts.
func (f Family) sampleUser(rng *rand.Rand) string {
	if f.Users <= 0 {
		return ""
	}
	// P(rank k) ∝ 1/k via inverse-CDF on the harmonic weights.
	u := rng.Float64()
	var hTotal float64
	for k := 1; k <= f.Users; k++ {
		hTotal += 1 / float64(k)
	}
	target := u * hTotal
	var run float64
	for k := 1; k <= f.Users; k++ {
		run += 1 / float64(k)
		if target <= run {
			return fmt.Sprintf("u%02d", k)
		}
	}
	return fmt.Sprintf("u%02d", f.Users)
}

// sampleJob draws a single (length, cpus) pair honouring the family's
// length bounds.
func (f Family) sampleJob(length stats.Distribution, cpus func() int) (simtime.Duration, int) {
	for i := 0; ; i++ {
		l := simtime.Duration(math.Round(length.Sample()))
		if l < f.MinLen || (f.MaxLen > 0 && l > f.MaxLen) {
			if i < 256 {
				continue
			}
			// Clamp after persistent rejection to keep generation total.
			if l < f.MinLen {
				l = f.MinLen
			} else {
				l = f.MaxLen
			}
		}
		return l, cpus()
	}
}

// GenerateByCount produces n jobs with exponential interarrivals filling
// [0, horizon) — the paper's "uniformly sample n jobs spanning the
// horizon" construction.
func (f Family) GenerateByCount(rng *rand.Rand, n int, horizon simtime.Duration) *Trace {
	if n <= 0 || horizon <= 0 {
		return MustTrace(f.Name, nil)
	}
	length := f.NewLength(rng)
	cpus := f.NewCPUs(rng)
	jobs := make([]Job, 0, n)
	for _, arrival := range f.arrivals(rng, n, horizon) {
		l, c := f.sampleJob(length, cpus)
		jobs = append(jobs, Job{Arrival: arrival, Length: l, CPUs: c, User: f.sampleUser(rng)})
	}
	return MustTrace(f.Name, jobs)
}

// arrivals draws n arrival instants in [0, horizon). With a rate profile it
// samples a non-homogeneous Poisson process by inverse transform over the
// per-hour cumulative rate; otherwise arrivals are uniform.
func (f Family) arrivals(rng *rand.Rand, n int, horizon simtime.Duration) []simtime.Time {
	out := make([]simtime.Time, 0, n)
	hours := int(horizon / simtime.Hour)
	var rates []float64
	if f.NewRates != nil && hours > 0 {
		rates = f.NewRates(rng, hours)
	}
	if rates == nil {
		for i := 0; i < n; i++ {
			out = append(out, simtime.Time(rng.Float64()*float64(horizon)))
		}
		return out
	}
	cum := make([]float64, len(rates)+1)
	for i, r := range rates {
		if r < 0 {
			r = 0
		}
		cum[i+1] = cum[i] + r
	}
	total := cum[len(rates)]
	if total <= 0 {
		return f.arrivalsUniform(rng, n, horizon)
	}
	for i := 0; i < n; i++ {
		u := rng.Float64() * total
		// Find the hour slot containing cumulative mass u.
		lo, hi := 0, len(rates)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] <= u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		frac := 0.0
		if w := cum[lo+1] - cum[lo]; w > 0 {
			frac = (u - cum[lo]) / w
		}
		at := (float64(lo) + frac) * float64(simtime.Hour)
		out = append(out, simtime.Time(at))
	}
	return out
}

func (f Family) arrivalsUniform(rng *rand.Rand, n int, horizon simtime.Duration) []simtime.Time {
	out := make([]simtime.Time, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, simtime.Time(rng.Float64()*float64(horizon)))
	}
	return out
}

// hpcRates models HPC submission behaviour: business-hours peaks, weekend
// troughs, and multi-day "campaign" surges (an AR(1) log-scale daily
// factor). dayAmp scales the diurnal swing, campaignStd the campaign
// volatility.
func hpcRates(dayAmp, weekendFactor, campaignStd float64) func(*rand.Rand, int) []float64 {
	return func(rng *rand.Rand, hours int) []float64 {
		rates := make([]float64, hours)
		campaign := 0.0
		const rho = 0.7 // day-to-day persistence
		for h := 0; h < hours; h++ {
			t := simtime.Time(simtime.Duration(h) * simtime.Hour)
			hod := t.HourOfDay()
			if hod == 0 {
				campaign = rho*campaign + campaignStd*math.Sqrt(1-rho*rho)*rng.NormFloat64()
			}
			// Business-hours bump centred at 13:00.
			day := 1 + dayAmp*math.Exp(-squared(float64(hod)-13)/18)
			rate := day * math.Exp(campaign)
			if dow := t.DayIndex() % 7; dow >= 5 {
				rate *= weekendFactor
			}
			rates[h] = rate
		}
		return rates
	}
}

func squared(x float64) float64 { return x * x }

// GenerateByDemand produces a trace over [0, horizon) whose time-averaged
// CPU demand approximates target (CPUs). It pre-samples the family's
// per-job compute volume to choose the arrival rate, so the empirical mean
// demand lands close to target for any family. This is how experiments
// pin the paper's per-trace mean demands (Mustang 468, Alibaba 100,
// Azure 142 — Figure 17).
func (f Family) GenerateByDemand(rng *rand.Rand, target float64, horizon simtime.Duration) *Trace {
	if target <= 0 || horizon <= 0 {
		return MustTrace(f.Name, nil)
	}
	// Estimate E[length × cpus] in CPU·minutes from a calibration sample
	// drawn from an independent stream (so the trace itself is unbiased).
	calRNG := rand.New(rand.NewSource(rng.Int63()))
	length := f.NewLength(calRNG)
	cpus := f.NewCPUs(calRNG)
	const calN = 20000
	var volSum float64
	for i := 0; i < calN; i++ {
		l, c := f.sampleJob(length, cpus)
		volSum += float64(l) * float64(c)
	}
	meanVol := volSum / calN // CPU·minutes per job
	// target CPUs sustained = meanVol / interarrival.
	meanGap := meanVol / target
	n := int(float64(horizon) / meanGap)
	if n < 1 {
		n = 1
	}
	return f.GenerateByCount(rng, n, horizon)
}

// AlibabaPAI mimics the Alibaba-PAI ML-platform trace after the paper's
// filtering: a heavy-tailed length mixture with ≈half the jobs under an
// hour and a few multi-day stragglers (Figure 5a), and small CPU
// requests with a tail to ~100 CPUs (Figure 5b).
func AlibabaPAI() Family {
	return Family{
		Name: "alibaba",
		NewLength: func(rng *rand.Rand) stats.Distribution {
			return stats.NewTruncLogNormal(rng, math.Log(50), 1.9, 5, 3*24*60)
		},
		NewCPUs: func(rng *rand.Rand) func() int {
			d := stats.NewBoundedPareto(rng, 1.9, 1, 100.49)
			return func() int { return int(math.Round(d.Sample())) }
		},
		MinLen:   5 * simtime.Minute,
		MaxLen:   3 * simtime.Day,
		NewRates: hpcRates(0.8, 0.75, 0.15),
		Users:    24,
	}
}

// AlibabaPAIWeek is the prototype variant of AlibabaPAI limited to
// <=4-CPU jobs (the paper restricts its week-long 1k-job AWS testbed trace
// to four CPUs for budget reasons).
func AlibabaPAIWeek() Family {
	f := AlibabaPAI()
	f.Name = "alibaba-week"
	f.NewCPUs = func(rng *rand.Rand) func() int {
		d := stats.NewBoundedPareto(rng, 1.9, 1, 4.49)
		return func() int { return int(math.Round(d.Sample())) }
	}
	return f
}

// AzureVM mimics the Azure-VM trace: mostly short-to-medium lifetimes
// with a substantial multi-day tail (VMs spanning several CI cycles) and
// small per-VM CPU buckets. Its aggregate demand is smooth
// (demand CV ≈ 0.3, §6.4.4).
func AzureVM() Family {
	return Family{
		Name: "azure",
		NewLength: func(rng *rand.Rand) stats.Distribution {
			return stats.NewMixture(rng,
				[]stats.Distribution{
					stats.NewTruncLogNormal(rng, math.Log(45), 1.5, 5, 3*24*60),
					stats.NewTruncLogNormal(rng, math.Log(13*60), 1.0, 5, 3*24*60),
				},
				[]float64{0.80, 0.20},
			)
		},
		NewCPUs: func(rng *rand.Rand) func() int {
			d := stats.NewBoundedPareto(rng, 2.2, 1, 64.49)
			return func() int { return int(math.Round(d.Sample())) }
		},
		MinLen: 5 * simtime.Minute,
		MaxLen: 3 * simtime.Day,
		Users:  32,
	}
}

// MustangHPC mimics LANL's Mustang trace: capped at 16 h (its reported
// maximum), with large parallel MPI allocations that make the aggregate
// demand bursty (demand CV ≈ 0.8, §6.4.4).
func MustangHPC() Family {
	return Family{
		Name: "mustang",
		NewLength: func(rng *rand.Rand) stats.Distribution {
			return stats.NewTruncLogNormal(rng, math.Log(90), 1.25, 5, 16*60)
		},
		NewCPUs: func(rng *rand.Rand) func() int {
			small := stats.NewBoundedPareto(rng, 1.5, 1, 8.49)
			big := stats.NewBoundedPareto(rng, 1.1, 16, 256.49)
			return func() int {
				if rng.Float64() < 0.8 {
					return int(math.Round(small.Sample()))
				}
				return int(math.Round(big.Sample()))
			}
		},
		MinLen:   5 * simtime.Minute,
		MaxLen:   16 * simtime.Hour,
		NewRates: hpcRates(2.2, 0.35, 0.55),
		Users:    16,
	}
}

// Families returns the three production-trace stand-ins in the paper's
// order (Mustang, Alibaba, Azure).
func Families() []Family {
	return []Family{MustangHPC(), AlibabaPAI(), AzureVM()}
}

// PoissonSpec is the Section-3 illustrative workload: exponential
// interarrivals, exponential lengths, fixed CPU count.
type PoissonSpec struct {
	MeanInterarrival simtime.Duration
	MeanLength       simtime.Duration
	CPUs             int
}

// SectionThreeWorkload returns the paper's Section-3 example parameters:
// 48 min mean interarrival, 4 h mean length, 1 CPU (≈5 CPUs mean demand).
func SectionThreeWorkload() PoissonSpec {
	return PoissonSpec{
		MeanInterarrival: 48 * simtime.Minute,
		MeanLength:       4 * simtime.Hour,
		CPUs:             1,
	}
}

// Generate produces a Poisson trace over [0, horizon).
func (p PoissonSpec) Generate(rng *rand.Rand, horizon simtime.Duration) *Trace {
	inter := stats.NewExponential(rng, float64(p.MeanInterarrival))
	length := stats.NewExponential(rng, float64(p.MeanLength))
	var jobs []Job
	var at float64
	for {
		at += inter.Sample()
		if at >= float64(horizon) {
			break
		}
		l := simtime.Duration(math.Round(length.Sample()))
		if l < 1 {
			l = 1
		}
		jobs = append(jobs, Job{Arrival: simtime.Time(at), Length: l, CPUs: p.CPUs})
	}
	return MustTrace("poisson", jobs)
}
