package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/carbonsched/gaia/internal/simtime"
)

// WriteCSV writes the trace as "id,arrival_min,length_min,cpus,queue,user"
// rows with a header. Real cluster traces converted to this schema can be
// replayed through the simulator unchanged.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "arrival_min", "length_min", "cpus", "queue", "user"}); err != nil {
		return fmt.Errorf("workload: writing header: %w", err)
	}
	for _, j := range t.Jobs {
		rec := []string{
			strconv.Itoa(j.ID),
			strconv.FormatInt(int64(j.Arrival), 10),
			strconv.FormatInt(int64(j.Length), 10),
			strconv.Itoa(j.CPUs),
			j.Queue.String(),
			j.User,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("workload: writing job %d: %w", j.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV. The user column is optional
// (5-column files from older exports load with empty users).
func ReadCSV(name string, r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading csv: %w", err)
	}
	if len(rows) < 1 {
		return nil, fmt.Errorf("workload: csv has no rows")
	}
	jobs := make([]Job, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) < 5 || len(row) > 6 {
			return nil, fmt.Errorf("workload: row %d: want 5 or 6 fields, got %d", i+1, len(row))
		}
		arrival, err1 := strconv.ParseInt(row[1], 10, 64)
		length, err2 := strconv.ParseInt(row[2], 10, 64)
		cpus, err3 := strconv.Atoi(row[3])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("workload: row %d: malformed fields %v", i+1, row)
		}
		q, err := ParseQueue(row[4])
		if err != nil {
			return nil, fmt.Errorf("workload: row %d: %w", i+1, err)
		}
		user := ""
		if len(row) == 6 {
			user = row[5]
		}
		jobs = append(jobs, Job{
			Arrival: simtime.Time(arrival),
			Length:  simtime.Duration(length),
			CPUs:    cpus,
			Queue:   q,
			User:    user,
		})
	}
	return NewTrace(name, jobs)
}
