package workload

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"github.com/carbonsched/gaia/internal/simtime"
)

func TestScaleCurveValidate(t *testing.T) {
	cases := []struct {
		name  string
		curve ScaleCurve
		ok    bool
	}{
		{"flat", ScaleCurve{1}, true},
		{"diminishing", ScaleCurve{1, 0.8, 0.5}, true},
		{"constant", ScaleCurve{1, 1, 1}, true},
		{"empty", ScaleCurve{}, false},
		{"base-not-one", ScaleCurve{0.9}, false},
		{"rising", ScaleCurve{1, 0.5, 0.8}, false},
		{"zero-marginal", ScaleCurve{1, 0}, false},
		{"negative", ScaleCurve{1, -0.1}, false},
		{"nan", ScaleCurve{1, math.NaN()}, false},
		{"inf", ScaleCurve{1, math.Inf(1)}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.curve.Validate(); (err == nil) != tc.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestScaleCurveThroughput(t *testing.T) {
	c := ScaleCurve{1, 0.8, 0.5}
	for k, want := range map[int]float64{0: 0, 1: 1, 2: 1.8, 3: 2.3, 99: 2.3} {
		if got := c.Throughput(k); math.Abs(got-want) > 1e-12 {
			t.Errorf("Throughput(%d) = %v, want %v", k, got, want)
		}
	}
}

func TestAmdahlCurveValidates(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		c := AmdahlCurve(p, 8)
		if err := c.Validate(); err != nil {
			t.Errorf("AmdahlCurve(%v, 8): %v", p, err)
		}
		// Throughput at k replicas must equal Amdahl speedup S(k).
		s4 := 1 / ((1 - p) + p/4)
		if got := c.Throughput(4); math.Abs(got-s4) > 1e-9 {
			t.Errorf("AmdahlCurve(%v).Throughput(4) = %v, want %v", p, got, s4)
		}
	}
}

func TestElasticSpecValidate(t *testing.T) {
	good := ElasticSpec{MinReplicas: 1, MaxReplicas: 2, Curve: ScaleCurve{1, 0.7}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ElasticSpec{
		{MinReplicas: -1, MaxReplicas: 1, Curve: ScaleCurve{1}},
		{MinReplicas: 0, MaxReplicas: 0, Curve: ScaleCurve{1}},
		{MinReplicas: 3, MaxReplicas: 2, Curve: ScaleCurve{1, 0.5, 0.5}},
		{MinReplicas: 1, MaxReplicas: 4, Curve: ScaleCurve{1, 0.5}}, // curve too short
	}
	for i, sp := range bad {
		if sp.Validate() == nil {
			t.Errorf("spec %d validated: %+v", i, sp)
		}
	}
	if !DegenerateSpec().Degenerate() {
		t.Error("DegenerateSpec is not degenerate")
	}
	if err := DegenerateSpec().Validate(); err != nil {
		t.Error(err)
	}
}

// elasticJobs returns n unit jobs with ascending arrivals (so normalized
// IDs equal input positions).
func elasticJobs(n int, length simtime.Duration) []Job {
	js := make([]Job, n)
	for i := range js {
		js[i] = Job{Arrival: simtime.Time(i), Length: length, CPUs: 1}
	}
	return js
}

func degenerateSpecs(n int) []ElasticSpec {
	sp := make([]ElasticSpec, n)
	for i := range sp {
		sp[i] = DegenerateSpec()
	}
	return sp
}

func TestNewElasticTraceRenumbers(t *testing.T) {
	// Jobs out of arrival order: specs and edges follow the stable sort.
	jobs := []Job{
		{Arrival: 100, Length: 60, CPUs: 1},
		{Arrival: 0, Length: 30, CPUs: 2},
	}
	specs := []ElasticSpec{
		{MinReplicas: 1, MaxReplicas: 4, Curve: ScaleCurve{1, 1, 1, 1}},
		DegenerateSpec(),
	}
	et, err := NewElasticTrace("re", jobs, specs, []Edge{{Src: 1, Dst: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if et.Jobs.Jobs[0].Arrival != 0 || et.Jobs.Jobs[0].CPUs != 2 {
		t.Fatalf("job 0 = %+v, want the arrival-0 job", et.Jobs.Jobs[0])
	}
	if et.Spec(1).MaxReplicas != 4 {
		t.Errorf("spec did not follow its job through renumbering: %+v", et.Spec(1))
	}
	if len(et.Edges) != 1 || et.Edges[0] != (Edge{Src: 0, Dst: 1}) {
		t.Errorf("edge not remapped: %+v", et.Edges)
	}
	// Both endpoints are managed (on the DAG) despite one degenerate spec.
	if !et.Managed(0) || !et.Managed(1) || et.ManagedCount() != 2 {
		t.Errorf("managed = %v/%v, count %d", et.Managed(0), et.Managed(1), et.ManagedCount())
	}
}

func TestNewElasticTraceRejections(t *testing.T) {
	jobs := elasticJobs(3, 60)
	specs := degenerateSpecs(3)
	cases := []struct {
		name  string
		edges []Edge
		want  string
	}{
		{"self-edge", []Edge{{Src: 1, Dst: 1}}, "self-edge on job 1"},
		{"out-of-range", []Edge{{Src: 0, Dst: 7}}, "outside 0..2"},
		{"negative", []Edge{{Src: -1, Dst: 0}}, "outside 0..2"},
		{"duplicate", []Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 1}}, "duplicate edge 0→1"},
		{"cycle", []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}}, "precedence cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewElasticTrace("bad", jobs, specs, tc.edges)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want containing %q", err, tc.want)
			}
		})
	}
	if _, err := NewElasticTrace("bad", jobs, specs[:2], nil); err == nil {
		t.Error("mismatched spec count accepted")
	}
}

func TestCycleErrorNamesCycleVertex(t *testing.T) {
	// Cycle 1→2→3→1 with job 4 downstream of it: the named vertex must be
	// on the cycle itself, never the merely-unreachable job 4.
	jobs := elasticJobs(5, 60)
	edges := []Edge{{Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 1}, {Src: 3, Dst: 4}}
	_, err := NewElasticTrace("cyc", jobs, degenerateSpecs(5), edges)
	if err == nil {
		t.Fatal("cycle accepted")
	}
	id := namedJob(t, err.Error())
	if id != 1 && id != 2 && id != 3 {
		t.Errorf("cycle error names job %d, not on the cycle {1,2,3}: %v", id, err)
	}
}

// namedJob extracts the job ID from a "precedence cycle through job N"
// error message.
func namedJob(t *testing.T, msg string) int {
	t.Helper()
	const marker = "cycle through job "
	i := strings.Index(msg, marker)
	if i < 0 {
		t.Fatalf("error does not name a job: %q", msg)
	}
	id, err := strconv.Atoi(strings.TrimSpace(msg[i+len(marker):]))
	if err != nil {
		t.Fatalf("unparseable job id in %q: %v", msg, err)
	}
	return id
}

func TestCriticalPathHandChecked(t *testing.T) {
	// A(len 1h) → C(len 30m) ← B(len 2h), all arriving at 0.
	jobs := []Job{
		{Arrival: 0, Length: simtime.Hour, CPUs: 1},
		{Arrival: 0, Length: 2 * simtime.Hour, CPUs: 1},
		{Arrival: 0, Length: 30 * simtime.Minute, CPUs: 1},
	}
	et, err := NewElasticTrace("cpm", jobs, degenerateSpecs(3), []Edge{
		{Src: 0, Dst: 2}, {Src: 1, Dst: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// B then C is the critical chain: 2h + 30m.
	if got := et.CriticalPathLength(); got != 150*simtime.Minute {
		t.Errorf("critical path = %v, want 150", got)
	}
	// A may slip an hour (B's EF 120 − A's EF 60); B and C have none.
	wantSlack := map[int]simtime.Duration{0: simtime.Hour, 1: 0, 2: 0}
	for id, want := range wantSlack {
		got, ok := et.Slack(id)
		if !ok || got != want {
			t.Errorf("Slack(%d) = %v,%v, want %v,true", id, got, ok, want)
		}
	}
	if _, ok := Degenerate(et.Jobs).Slack(0); ok {
		t.Error("edge-free job reported slack")
	}
}

func TestDisjointComponentsSlackIndependently(t *testing.T) {
	// Two unconnected chains; the shorter one's sink must have zero slack
	// against its own makespan, not borrow the longer chain's.
	jobs := elasticJobs(4, simtime.Hour)
	jobs[2].Length = 5 * simtime.Hour
	et, err := NewElasticTrace("comp", jobs, degenerateSpecs(4), []Edge{
		{Src: 0, Dst: 1}, {Src: 2, Dst: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 4; id++ {
		if s, ok := et.Slack(id); !ok || s != 0 {
			t.Errorf("Slack(%d) = %v,%v, want 0,true (every chain job is critical)", id, s, ok)
		}
	}
}

func TestDegenerateWrapSharesTrace(t *testing.T) {
	tr := MustTrace("base", elasticJobs(10, simtime.Hour))
	et := Degenerate(tr)
	if et.Jobs != tr {
		t.Error("Degenerate copied the trace")
	}
	if et.ManagedCount() != 0 || et.HasEdges() {
		t.Errorf("degenerate wrap is managed: count %d edges %v", et.ManagedCount(), et.HasEdges())
	}
}

func TestElasticCSVRoundTrip(t *testing.T) {
	jobs := []Job{
		{Arrival: 0, Length: simtime.Hour, CPUs: 2, Queue: QueueShort, User: "u1"},
		{Arrival: 30, Length: 3 * simtime.Hour, CPUs: 1, Queue: QueueLong, User: "u2"},
		{Arrival: 60, Length: 2 * simtime.Hour, CPUs: 4, Queue: QueueLong, User: "u1"},
	}
	specs := []ElasticSpec{
		{MinReplicas: 0, MaxReplicas: 4, Curve: AmdahlCurve(0.9, 4)},
		DegenerateSpec(),
		{MinReplicas: 1, MaxReplicas: 2, Curve: ScaleCurve{1, 0.6}},
	}
	et, err := NewElasticTrace("rt", jobs, specs, []Edge{{Src: 0, Dst: 2}, {Src: 1, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	var jb, eb bytes.Buffer
	if err := et.WriteElasticCSV(&jb); err != nil {
		t.Fatal(err)
	}
	if err := et.WriteEdgesCSV(&eb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadElasticCSV("rt", &jb, &eb)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != et.Fingerprint() {
		t.Error("round trip changed the elastic fingerprint")
	}
	if back.CriticalPathLength() != et.CriticalPathLength() {
		t.Errorf("critical path %v != %v", back.CriticalPathLength(), et.CriticalPathLength())
	}
}

func TestReadElasticCSVRejections(t *testing.T) {
	header := "id,arrival_min,length_min,cpus,queue,user,min_replicas,max_replicas,curve\n"
	goodRow := "7,0,60,1,short,u,1,1,1\n"
	edgeHeader := "src,dst\n"
	cases := []struct {
		name  string
		jobs  string
		edges string
		want  string
	}{
		{"short-row", header + "7,0,60,1\n", "", "want 9 fields"},
		{"bad-int", header + "x,0,60,1,short,u,1,1,1\n", "", "malformed fields"},
		{"bad-curve", header + "7,0,60,1,short,u,1,1,nope\n", "", "malformed curve"},
		{"duplicate-id", header + goodRow + goodRow, "", "duplicate job id 7"},
		{"dangling-edge", header + goodRow, edgeHeader + "7,12\n", "unknown job id 12"},
		{"edge-fields", header + goodRow, edgeHeader + "7\n", "want 2 fields"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var edges *strings.Reader
			_, err := func() (*ElasticTrace, error) {
				if tc.edges == "" {
					return ReadElasticCSV("x", strings.NewReader(tc.jobs), nil)
				}
				edges = strings.NewReader(tc.edges)
				return ReadElasticCSV("x", strings.NewReader(tc.jobs), edges)
			}()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestElasticFingerprintSensitivity(t *testing.T) {
	jobs := elasticJobs(4, simtime.Hour)
	base := MustElasticTrace("fp", jobs, degenerateSpecs(4), []Edge{{Src: 0, Dst: 1}})
	editions := []*ElasticTrace{
		MustElasticTrace("fp", jobs, degenerateSpecs(4), []Edge{{Src: 0, Dst: 2}}),
		MustElasticTrace("fp", jobs, degenerateSpecs(4), nil),
		func() *ElasticTrace {
			sp := degenerateSpecs(4)
			sp[1] = ElasticSpec{MinReplicas: 1, MaxReplicas: 2, Curve: ScaleCurve{1, 0.5}}
			return MustElasticTrace("fp", jobs, sp, []Edge{{Src: 0, Dst: 1}})
		}(),
	}
	for i, e := range editions {
		if e.Fingerprint() == base.Fingerprint() {
			t.Errorf("edition %d collides with base", i)
		}
	}
	same := MustElasticTrace("fp", jobs, degenerateSpecs(4), []Edge{{Src: 0, Dst: 1}})
	if same.Fingerprint() != base.Fingerprint() {
		t.Error("identical content fingerprints differently")
	}
}

// FuzzDAGEdges drives the edge validator with arbitrary edge lists over a
// fixed job set: construction must deterministically accept or reject —
// never panic — and a cycle rejection must name a vertex that actually
// lies on a cycle.
func FuzzDAGEdges(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2})             // chain
	f.Add([]byte{0, 1, 1, 0})             // 2-cycle
	f.Add([]byte{3, 3})                   // self-edge
	f.Add([]byte{0, 200})                 // out of range
	f.Add([]byte{0, 1, 0, 1})             // duplicate
	f.Add([]byte{1, 2, 2, 3, 3, 1, 3, 4}) // cycle with downstream cone
	f.Fuzz(func(t *testing.T, raw []byte) {
		const n = 6
		jobs := elasticJobs(n, simtime.Hour)
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			// Bias into range so cycles are reachable, but keep some
			// out-of-range endpoints to exercise that rejection too.
			edges = append(edges, Edge{Src: int(raw[i]) % (n + 2), Dst: int(raw[i+1]) % (n + 2)})
		}
		et, err := NewElasticTrace("fuzz", jobs, degenerateSpecs(n), edges)
		et2, err2 := NewElasticTrace("fuzz", jobs, degenerateSpecs(n), edges)
		if (err == nil) != (err2 == nil) || (err != nil && err.Error() != err2.Error()) {
			t.Fatalf("nondeterministic outcome: %v vs %v", err, err2)
		}
		if err != nil {
			if msg := err.Error(); strings.Contains(msg, "precedence cycle") {
				id := namedJob(t, msg)
				if !onCycle(n, edges, id) {
					t.Fatalf("cycle error names job %d which is on no cycle: %v (edges %v)", id, err, edges)
				}
			}
			return
		}
		if et.Fingerprint() != et2.Fingerprint() {
			t.Fatal("accepted trace fingerprints nondeterministically")
		}
		// Accepted DAGs must topologically release: every job's slack is
		// defined iff it touches an edge.
		for id := 0; id < n; id++ {
			_, ok := et.Slack(id)
			touches := false
			for _, e := range et.Edges {
				if e.Src == id || e.Dst == id {
					touches = true
				}
			}
			if ok != touches {
				t.Fatalf("Slack(%d) defined=%v, touches edges=%v", id, ok, touches)
			}
		}
	})
}

// onCycle reports whether v can reach itself through the (in-range,
// renumber-free) edges — the fuzz oracle for the cycle error's vertex.
// Jobs arrive in index order, so normalized IDs equal input positions.
func onCycle(n int, edges []Edge, v int) bool {
	adj := make([][]int, n)
	for _, e := range edges {
		if e.Src >= 0 && e.Src < n && e.Dst >= 0 && e.Dst < n && e.Src != e.Dst {
			adj[e.Src] = append(adj[e.Src], e.Dst)
		}
	}
	seen := make([]bool, n)
	stack := append([]int(nil), adj[v]...)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == v {
			return true
		}
		if seen[x] {
			continue
		}
		seen[x] = true
		stack = append(stack, adj[x]...)
	}
	return false
}
