package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/carbonsched/gaia/internal/simtime"
)

// ScaleCurve is a malleable job's per-replica marginal throughput: adding
// replica k+1 to a job running at k replicas increases its processing rate
// by Curve[k] serial-equivalents. Curve[0] is the base replica and is
// always 1 by definition (a one-replica job runs at serial speed); the
// marginals must be positive and non-increasing (diminishing returns, the
// CarbonScaler assumption that makes greedy marginal allocation optimal).
type ScaleCurve []float64

// Validate checks the curve invariants.
func (c ScaleCurve) Validate() error {
	if len(c) == 0 {
		return fmt.Errorf("workload: scale curve is empty")
	}
	if c[0] != 1 {
		return fmt.Errorf("workload: scale curve must start at 1, got %v", c[0])
	}
	for i, m := range c {
		if !(m > 0) || math.IsInf(m, 0) {
			return fmt.Errorf("workload: scale curve marginal %d is %v, want positive finite", i, m)
		}
		if i > 0 && m > c[i-1] {
			return fmt.Errorf("workload: scale curve marginal %d rises (%v > %v)", i, m, c[i-1])
		}
	}
	return nil
}

// Throughput returns the processing rate at k replicas in serial-
// equivalents per unit time: the sum of the first k marginals (k is
// clamped to the curve's length; 0 replicas process nothing).
func (c ScaleCurve) Throughput(k int) float64 {
	if k > len(c) {
		k = len(c)
	}
	var s float64
	for i := 0; i < k; i++ {
		s += c[i]
	}
	return s
}

// AmdahlCurve builds a k-replica scale curve from Amdahl's law with the
// given parallel fraction p: marginal k is S(k+1)−S(k) for
// S(k) = 1/((1−p)+p/k). The marginals are positive and non-increasing for
// p in (0, 1), so such curves always validate (p = 0 would make every
// marginal past the first zero — a job that cannot use replicas should
// carry DegenerateSpec instead).
func AmdahlCurve(p float64, maxReplicas int) ScaleCurve {
	speedup := func(k int) float64 { return 1 / ((1 - p) + p/float64(k)) }
	c := make(ScaleCurve, maxReplicas)
	c[0] = 1
	for k := 1; k < maxReplicas; k++ {
		c[k] = speedup(k+1) - speedup(k)
	}
	return c
}

// ElasticSpec is one job's elasticity contract: the replica bounds and the
// marginal-throughput curve. The zero value is invalid; DegenerateSpec is
// the rigid single-replica contract.
type ElasticSpec struct {
	// MinReplicas is the smallest allocation the job accepts while
	// running. 0 marks the job preemptible: the allocator may suspend it
	// entirely (within the scheduler's waiting-time guarantee).
	MinReplicas int
	// MaxReplicas bounds how wide the job can scale (>= 1 and at most
	// len(Curve)).
	MaxReplicas int
	// Curve is the per-replica marginal throughput (Curve[0] == 1).
	Curve ScaleCurve
}

// DegenerateSpec is the rigid contract: exactly one replica, flat curve.
// A job carrying it (and no precedence edges) executes on the scheduler's
// rigid path, bit-identical to a run without elastic metadata at all.
func DegenerateSpec() ElasticSpec {
	return ElasticSpec{MinReplicas: 1, MaxReplicas: 1, Curve: degenerateCurve}
}

// degenerateCurve is shared by every DegenerateSpec so wrapping a trace
// costs one spec slice and no per-job curve allocations.
var degenerateCurve = ScaleCurve{1}

// Degenerate reports whether the spec pins the job to exactly one replica
// — the contract under which elastic execution is definitionally identical
// to the rigid path.
func (s ElasticSpec) Degenerate() bool {
	return s.MinReplicas == 1 && s.MaxReplicas == 1
}

// Validate checks the spec invariants.
func (s ElasticSpec) Validate() error {
	if s.MinReplicas < 0 {
		return fmt.Errorf("workload: min replicas %d must be non-negative", s.MinReplicas)
	}
	if s.MaxReplicas < 1 {
		return fmt.Errorf("workload: max replicas %d must be at least 1", s.MaxReplicas)
	}
	if s.MaxReplicas < s.MinReplicas {
		return fmt.Errorf("workload: max replicas %d below min %d", s.MaxReplicas, s.MinReplicas)
	}
	if err := s.Curve.Validate(); err != nil {
		return err
	}
	if len(s.Curve) < s.MaxReplicas {
		return fmt.Errorf("workload: curve has %d marginals for max replicas %d", len(s.Curve), s.MaxReplicas)
	}
	return nil
}

// Edge is one precedence constraint: job Dst may not start before job Src
// finishes. Endpoints are job IDs in the normalized (arrival-ordered)
// numbering of the trace the edge belongs to.
type Edge struct {
	Src, Dst int
}

// ElasticTrace attaches elasticity and precedence metadata to a workload
// trace: Specs[i] is the contract of Jobs.Jobs[i], and Edges are
// precedence constraints validated acyclic at construction. The embedded
// Trace is normalized (arrival-sorted, IDs 0..n−1) exactly like NewTrace's
// output, so the same instance passes to core.Run as both the workload and
// Config.Elastic.Jobs.
type ElasticTrace struct {
	Jobs  *Trace
	Specs []ElasticSpec
	Edges []Edge

	// Derived at construction (immutable afterwards).
	managed      []bool
	managedCount int
	onDAG        []bool
	predCount    []int32
	succs        [][]int32
	slack        []simtime.Duration
	critical     simtime.Duration
}

// elasticFingerprints memoizes ElasticTrace.Fingerprint per instance, the
// same side-table idiom Trace uses.
var elasticFingerprints sync.Map // *ElasticTrace → *[32]byte

// NewElasticTrace builds an elastic trace from parallel job/spec slices
// and precedence edges. Jobs are stably sorted by arrival and renumbered
// 0..n−1 (exactly like NewTrace); specs and edge endpoints follow the
// renumbering, so on input both refer to jobs by position in the jobs
// slice. It rejects malformed jobs or specs, out-of-range, self- or
// duplicate edges, and any precedence cycle (the error names a job on the
// cycle).
func NewElasticTrace(name string, jobs []Job, specs []ElasticSpec, edges []Edge) (*ElasticTrace, error) {
	if len(specs) != len(jobs) {
		return nil, fmt.Errorf("workload: %d specs for %d jobs", len(specs), len(jobs))
	}
	n := len(jobs)

	// Stable arrival sort via an index permutation so specs and edge
	// endpoints can be remapped onto the new numbering.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return jobs[order[a]].Arrival < jobs[order[b]].Arrival
	})
	newID := make([]int, n) // old position → new ID
	js := make([]Job, n)
	sp := make([]ElasticSpec, n)
	for newPos, oldPos := range order {
		newID[oldPos] = newPos
		js[newPos] = jobs[oldPos]
		js[newPos].ID = newPos
		sp[newPos] = specs[oldPos]
		if err := js[newPos].Validate(); err != nil {
			return nil, err
		}
		if err := sp[newPos].Validate(); err != nil {
			return nil, fmt.Errorf("workload: job %d: %w", newPos, err)
		}
	}

	es := make([]Edge, 0, len(edges))
	seen := make(map[Edge]bool, len(edges))
	for _, e := range edges {
		if e.Src < 0 || e.Src >= n || e.Dst < 0 || e.Dst >= n {
			return nil, fmt.Errorf("workload: edge %d→%d references a job outside 0..%d", e.Src, e.Dst, n-1)
		}
		m := Edge{Src: newID[e.Src], Dst: newID[e.Dst]}
		if m.Src == m.Dst {
			return nil, fmt.Errorf("workload: self-edge on job %d", m.Src)
		}
		if seen[m] {
			return nil, fmt.Errorf("workload: duplicate edge %d→%d", m.Src, m.Dst)
		}
		seen[m] = true
		es = append(es, m)
	}
	// Canonical edge order: the fingerprint and every scheduler walk must
	// not depend on input edge order.
	sort.Slice(es, func(a, b int) bool {
		if es[a].Src != es[b].Src {
			return es[a].Src < es[b].Src
		}
		return es[a].Dst < es[b].Dst
	})

	et := &ElasticTrace{
		Jobs:  &Trace{Name: name, Jobs: js},
		Specs: sp,
		Edges: es,
	}
	if err := et.derive(); err != nil {
		return nil, err
	}
	return et, nil
}

// MustElasticTrace is NewElasticTrace that panics on error.
func MustElasticTrace(name string, jobs []Job, specs []ElasticSpec, edges []Edge) *ElasticTrace {
	et, err := NewElasticTrace(name, jobs, specs, edges)
	if err != nil {
		panic(err)
	}
	return et
}

// Degenerate wraps an already-normalized trace in the rigid elastic
// contract: every job single-replica, flat curve, no edges. Running it is
// bit-identical to running the trace without elastic metadata — the seam
// the degenerate differential tests pivot on. The trace pointer is reused
// as Jobs, so Config.Elastic.Jobs == trace holds without copying.
func Degenerate(tr *Trace) *ElasticTrace {
	specs := make([]ElasticSpec, len(tr.Jobs))
	for i := range specs {
		specs[i] = DegenerateSpec()
	}
	et := &ElasticTrace{Jobs: tr, Specs: specs}
	if err := et.derive(); err != nil {
		panic(err) // unreachable: degenerate specs and no edges always validate
	}
	return et
}

// derive computes the managed set, predecessor counts, successor lists,
// acyclicity (Kahn) and per-job slack from critical-path analysis.
func (et *ElasticTrace) derive() error {
	n := len(et.Jobs.Jobs)
	et.managed = make([]bool, n)
	et.onDAG = make([]bool, n)
	et.predCount = make([]int32, n)
	et.succs = make([][]int32, n)
	for _, e := range et.Edges {
		et.onDAG[e.Src] = true
		et.onDAG[e.Dst] = true
		et.predCount[e.Dst]++
		et.succs[e.Src] = append(et.succs[e.Src], int32(e.Dst))
	}
	for i := range et.succs {
		s := et.succs[i]
		sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	}
	et.managedCount = 0
	for i, sp := range et.Specs {
		et.managed[i] = !sp.Degenerate() || et.onDAG[i]
		if et.managed[i] {
			et.managedCount++
		}
	}
	topo, err := et.topoOrder()
	if err != nil {
		return err
	}
	et.computeSlack(topo)
	return nil
}

// topoOrder runs Kahn's algorithm over the DAG members; a cycle is
// reported with a job that lies on it.
func (et *ElasticTrace) topoOrder() ([]int32, error) {
	n := len(et.Jobs.Jobs)
	indeg := append([]int32(nil), et.predCount...)
	queue := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if et.onDAG[i] && indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	topo := make([]int32, 0, n)
	for len(queue) > 0 {
		// Pop the smallest ID for a canonical order (queue is kept sorted
		// by construction: seeds ascend and successors are pushed in
		// ascending order, then re-sorted below).
		sort.Slice(queue, func(a, b int) bool { return queue[a] < queue[b] })
		v := queue[0]
		queue = queue[1:]
		topo = append(topo, v)
		for _, s := range et.succs[v] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	for i := 0; i < n; i++ {
		if et.onDAG[i] && indeg[i] > 0 {
			// i still has unprocessed predecessors: walk maximal-indegree
			// predecessors until a vertex repeats — that vertex is on a
			// cycle.
			return nil, fmt.Errorf("workload: precedence cycle through job %d", et.cycleVertex(i, indeg))
		}
	}
	return topo, nil
}

// cycleVertex walks backwards from a vertex left unprocessed by Kahn's
// algorithm until it revisits a vertex; every step stays inside the
// residual graph (indeg > 0), which consists exactly of the cycles and
// their downstream cones, so the walk must close a cycle.
func (et *ElasticTrace) cycleVertex(start int, indeg []int32) int {
	preds := make(map[int][]int, len(et.Edges))
	for _, e := range et.Edges {
		if indeg[e.Dst] > 0 && indeg[e.Src] > 0 {
			preds[e.Dst] = append(preds[e.Dst], e.Src)
		}
	}
	visited := make(map[int]bool)
	v := start
	for !visited[v] {
		visited[v] = true
		ps := preds[v]
		if len(ps) == 0 {
			return v // start was downstream of the cycle; v is on it
		}
		sort.Ints(ps)
		v = ps[0]
	}
	return v
}

// computeSlack runs critical-path analysis over the DAG members using the
// serial job lengths: earliest start ES = max(arrival, max pred EF),
// latest finish LF = min successor LS (sinks: their component's makespan).
// Slack = LS − ES is how far a job can shift without delaying its
// component's completion; critical-path jobs have slack 0.
func (et *ElasticTrace) computeSlack(topo []int32) {
	n := len(et.Jobs.Jobs)
	et.slack = make([]simtime.Duration, n)
	if len(topo) == 0 {
		return
	}
	// Weakly-connected components via union-find, so disjoint DAGs each
	// measure slack against their own makespan.
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range et.Edges {
		a, b := find(int32(e.Src)), find(int32(e.Dst))
		if a != b {
			parent[a] = b
		}
	}

	es := make([]simtime.Time, n)
	ef := make([]simtime.Time, n)
	for _, v := range topo {
		es[v] = et.Jobs.Jobs[v].Arrival
		ef[v] = es[v].Add(et.Jobs.Jobs[v].Length)
	}
	for _, v := range topo {
		for _, s := range et.succs[v] {
			if ef[v] > es[s] {
				es[s] = ef[v]
				ef[s] = es[s].Add(et.Jobs.Jobs[s].Length)
			}
		}
	}
	makespan := make(map[int32]simtime.Time)
	for _, v := range topo {
		r := find(v)
		if ef[v] > makespan[r] {
			makespan[r] = ef[v]
		}
	}
	lf := make([]simtime.Time, n)
	for _, v := range topo {
		lf[v] = makespan[find(v)]
	}
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		for _, s := range et.succs[v] {
			ls := lf[s].Add(-et.Jobs.Jobs[s].Length)
			if ls < lf[v] {
				lf[v] = ls
			}
		}
	}
	for _, v := range topo {
		ls := lf[v].Add(-et.Jobs.Jobs[v].Length)
		et.slack[v] = ls.Sub(es[v])
		if et.slack[v] < 0 {
			et.slack[v] = 0 // degenerate float-free guard; CPM yields >= 0
		}
		if span := ef[v].Sub(et.Jobs.Jobs[v].Arrival); et.onDAG[v] && et.slack[v] == 0 && span > et.critical {
			et.critical = span
		}
	}
}

// Len returns the number of jobs.
func (et *ElasticTrace) Len() int { return len(et.Jobs.Jobs) }

// ManagedCount returns how many jobs need elastic execution — a
// non-degenerate spec or at least one precedence edge. Zero means the
// whole trace rides the rigid path.
func (et *ElasticTrace) ManagedCount() int { return et.managedCount }

// Managed reports whether job id needs elastic execution.
func (et *ElasticTrace) Managed(id int) bool {
	return id >= 0 && id < len(et.managed) && et.managed[id]
}

// Spec returns job id's elasticity contract.
func (et *ElasticTrace) Spec(id int) ElasticSpec { return et.Specs[id] }

// HasEdges reports whether any precedence constraints exist.
func (et *ElasticTrace) HasEdges() bool { return len(et.Edges) > 0 }

// PredCount returns how many predecessors job id waits on.
func (et *ElasticTrace) PredCount(id int) int { return int(et.predCount[id]) }

// Succs returns job id's successors in ascending ID order. Callers must
// not mutate the returned slice.
func (et *ElasticTrace) Succs(id int) []int32 { return et.succs[id] }

// Slack returns how far job id can shift without delaying its DAG
// component's completion (critical-path analysis over serial lengths).
// ok is false for jobs with no precedence edges — they are unconstrained
// and callers should fall back to their usual waiting window.
func (et *ElasticTrace) Slack(id int) (simtime.Duration, bool) {
	if id < 0 || id >= len(et.onDAG) || !et.onDAG[id] {
		return 0, false
	}
	return et.slack[id], true
}

// CriticalPathLength returns the longest arrival-to-finish span of any
// zero-slack DAG job — the paper-style makespan lower bound no schedule
// can beat.
func (et *ElasticTrace) CriticalPathLength() simtime.Duration { return et.critical }

// Fingerprint returns a content hash of everything that can influence an
// elastic simulation: the underlying trace fingerprint, every spec and
// every edge. Memoized per instance; callers must not mutate the trace
// after fingerprinting.
func (et *ElasticTrace) Fingerprint() [32]byte {
	if fp, ok := elasticFingerprints.Load(et); ok {
		return *fp.(*[32]byte)
	}
	h := sha256.New()
	var buf [8]byte
	le := binary.LittleEndian
	u64 := func(v uint64) {
		le.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	jfp := et.Jobs.Fingerprint()
	h.Write(jfp[:])
	u64(uint64(len(et.Specs)))
	for _, s := range et.Specs {
		u64(uint64(s.MinReplicas))
		u64(uint64(s.MaxReplicas))
		u64(uint64(len(s.Curve)))
		for _, m := range s.Curve {
			u64(math.Float64bits(m))
		}
	}
	u64(uint64(len(et.Edges)))
	for _, e := range et.Edges {
		u64(uint64(e.Src))
		u64(uint64(e.Dst))
	}
	fp := new([32]byte)
	h.Sum(fp[:0])
	elasticFingerprints.Store(et, fp)
	return *fp
}
