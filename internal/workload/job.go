// Package workload models batch jobs and cluster workload traces: the job
// and queue abstractions GAIA schedules, plus trace transforms and
// distribution-calibrated synthetic generators standing in for the
// Alibaba-PAI, Azure-VM and Mustang-HPC production traces used in the
// paper (real traces in the same CSV schema can be loaded instead).
package workload

import (
	"fmt"

	"github.com/carbonsched/gaia/internal/simtime"
)

// Queue identifies the job-length queue a job is submitted to (by index).
// Queues give the scheduler a coarse upper bound on job length without
// requiring users to declare exact lengths or deadlines (paper §2.2,
// §4.2). The paper's evaluation uses two queues (short/long); the
// framework supports any number — see core.Config.Queues.
type Queue int

// The paper's two-queue configuration.
const (
	QueueShort Queue = iota
	QueueLong
)

// String returns "short"/"long" for the paper's two queues and "qN"
// otherwise.
func (q Queue) String() string {
	switch q {
	case QueueShort:
		return "short"
	case QueueLong:
		return "long"
	default:
		return fmt.Sprintf("q%d", int(q))
	}
}

// ParseQueue inverts String.
func ParseQueue(s string) (Queue, error) {
	switch s {
	case "short":
		return QueueShort, nil
	case "long":
		return QueueLong, nil
	}
	var n int
	if _, err := fmt.Sscanf(s, "q%d", &n); err != nil || n < 0 {
		return 0, fmt.Errorf("workload: unknown queue %q", s)
	}
	return Queue(n), nil
}

// Job is one batch job: it arrives, needs CPUs resource units for Length,
// and runs to completion once started (suspend-resume baselines may split
// it across slots). IDs are unique within a trace.
type Job struct {
	ID      int
	Arrival simtime.Time
	// Length is the job's actual execution time. Schedulers may not see
	// it (that is policy-dependent); the simulator uses it to know when
	// the job completes.
	Length simtime.Duration
	// CPUs is the number of homogeneous resource units held concurrently.
	CPUs int
	// Queue is the length queue the job was submitted to. The paper
	// assumes users classify their jobs correctly; AssignQueues does so
	// from the true length.
	Queue Queue
	// User identifies the submitting account for per-user accounting
	// (queues may also represent "user classes", §4.1). Optional.
	User string
}

// Validate reports whether the job is well-formed.
func (j Job) Validate() error {
	if j.Length <= 0 {
		return fmt.Errorf("workload: job %d has non-positive length %v", j.ID, j.Length)
	}
	if j.CPUs <= 0 {
		return fmt.Errorf("workload: job %d has non-positive CPUs %d", j.ID, j.CPUs)
	}
	if j.Arrival < 0 {
		return fmt.Errorf("workload: job %d has negative arrival %v", j.ID, j.Arrival)
	}
	return nil
}

// End returns the completion time if the job starts at start.
func (j Job) End(start simtime.Time) simtime.Time { return start.Add(j.Length) }

// CPUHours returns the job's total compute volume in CPU·hours.
func (j Job) CPUHours() float64 { return j.Length.Hours() * float64(j.CPUs) }
