package workload

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// FuzzReadCSV asserts the workload parser never panics and that anything
// it accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("id,arrival_min,length_min,cpus,queue,user\n0,0,60,1,short,u01\n")
	f.Add("id,arrival_min,length_min,cpus,queue\n0,10,5,2,long\n")
	f.Add("h,h,h,h,h\n0,0,0,1,short\n")
	f.Add("")
	f.Add("id,arrival_min,length_min,cpus,queue\n0,-5,60,1,q99\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV("fuzz", strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		again, err := ReadCSV("fuzz2", &buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.Len() != tr.Len() {
			t.Fatalf("round trip changed job count: %d != %d", again.Len(), tr.Len())
		}
	})
}

// FuzzElasticCSV extends the same contract to the malleable parser: the
// joined jobs+edges reader must never panic, and any accepted trace must
// survive a WriteElasticCSV/WriteEdgesCSV round trip with its fingerprint
// (jobs, specs, edges, critical-path analysis) intact.
func FuzzElasticCSV(f *testing.F) {
	const hdr = "id,arrival_min,length_min,cpus,queue,user,min_replicas,max_replicas,curve\n"
	f.Add(hdr+"0,0,60,1,short,u01,1,1,1\n", "src,dst\n")
	f.Add(hdr+"0,0,60,2,long,u01,1,4,1;0.8;0.5;0.2\n1,30,120,2,long,u02,0,2,1;0.9\n", "src,dst\n0,1\n")
	f.Add(hdr+"7,0,60,1,short,u01,1,1,1\n9,0,60,1,short,u01,1,1,1\n", "src,dst\n9,7\n7,9\n") // cycle
	f.Add(hdr+"0,0,60,1,short,u01,2,1,1\n", "")                                              // min > max
	f.Add(hdr+"0,0,60,1,short,u01,1,2,1;1.5\n", "")                                          // increasing marginal
	f.Add(hdr+"0,0,60,1,short,u01,1,1,1\n", "src,dst\n0,5\n")                                // dangling edge
	f.Fuzz(func(t *testing.T, jobs string, edges string) {
		var er io.Reader
		if edges != "" {
			er = strings.NewReader(edges)
		}
		et, err := ReadElasticCSV("fuzz", strings.NewReader(jobs), er)
		if err != nil {
			return
		}
		var jb, eb bytes.Buffer
		if err := et.WriteElasticCSV(&jb); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		if err := et.WriteEdgesCSV(&eb); err != nil {
			t.Fatalf("accepted edges failed to serialize: %v", err)
		}
		again, err := ReadElasticCSV("fuzz", &jb, &eb)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.Fingerprint() != et.Fingerprint() {
			t.Fatalf("round trip changed fingerprint")
		}
	})
}
