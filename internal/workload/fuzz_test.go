package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV asserts the workload parser never panics and that anything
// it accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("id,arrival_min,length_min,cpus,queue,user\n0,0,60,1,short,u01\n")
	f.Add("id,arrival_min,length_min,cpus,queue\n0,10,5,2,long\n")
	f.Add("h,h,h,h,h\n0,0,0,1,short\n")
	f.Add("")
	f.Add("id,arrival_min,length_min,cpus,queue\n0,-5,60,1,q99\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV("fuzz", strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		again, err := ReadCSV("fuzz2", &buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.Len() != tr.Len() {
			t.Fatalf("round trip changed job count: %d != %d", again.Len(), tr.Len())
		}
	})
}
