package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/carbonsched/gaia/internal/simtime"
)

func mkJob(arrival simtime.Time, length simtime.Duration, cpus int) Job {
	return Job{Arrival: arrival, Length: length, CPUs: cpus}
}

func TestJobValidate(t *testing.T) {
	cases := []struct {
		j  Job
		ok bool
	}{
		{mkJob(0, 60, 1), true},
		{mkJob(0, 0, 1), false},
		{mkJob(0, 60, 0), false},
		{mkJob(-1, 60, 1), false},
	}
	for i, c := range cases {
		err := c.j.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestJobHelpers(t *testing.T) {
	j := mkJob(100, 2*simtime.Hour, 3)
	if j.End(200) != 200+2*60 {
		t.Errorf("End = %v", j.End(200))
	}
	if j.CPUHours() != 6 {
		t.Errorf("CPUHours = %v", j.CPUHours())
	}
}

func TestQueueString(t *testing.T) {
	if QueueShort.String() != "short" || QueueLong.String() != "long" {
		t.Error("queue names broken")
	}
	if Queue(7).String() != "q7" {
		t.Error("numbered queue name broken")
	}
	for _, s := range []string{"short", "long", "q3"} {
		q, err := ParseQueue(s)
		if err != nil || q.String() != s {
			t.Errorf("ParseQueue(%q) = %v, %v", s, q, err)
		}
	}
	if _, err := ParseQueue("weird"); err == nil {
		t.Error("bad queue should fail to parse")
	}
	if _, err := ParseQueue("q-1"); err == nil {
		t.Error("negative queue should fail to parse")
	}
}

func TestNewTraceSortsAndRenumbers(t *testing.T) {
	tr, err := NewTrace("t", []Job{
		mkJob(300, 60, 1),
		mkJob(100, 60, 1),
		mkJob(200, 60, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < tr.Len(); i++ {
		if tr.Jobs[i].Arrival < tr.Jobs[i-1].Arrival {
			t.Fatal("not sorted by arrival")
		}
	}
	for i, j := range tr.Jobs {
		if j.ID != i {
			t.Fatal("IDs not renumbered")
		}
	}
	if tr.Span() != 300 {
		t.Errorf("Span = %v", tr.Span())
	}
}

func TestNewTraceValidates(t *testing.T) {
	if _, err := NewTrace("t", []Job{mkJob(0, 0, 1)}); err == nil {
		t.Error("invalid job should error")
	}
}

func TestTotalsAndMeans(t *testing.T) {
	tr := MustTrace("t", []Job{
		mkJob(0, simtime.Hour, 2),   // 2 CPU·h
		mkJob(0, 2*simtime.Hour, 1), // 2 CPU·h
	})
	if tr.TotalCPUHours() != 4 {
		t.Errorf("TotalCPUHours = %v", tr.TotalCPUHours())
	}
	if tr.MeanLength() != 90*simtime.Minute {
		t.Errorf("MeanLength = %v", tr.MeanLength())
	}
	if got := tr.MeanDemand(4 * simtime.Hour); got != 1 {
		t.Errorf("MeanDemand = %v", got)
	}
	empty := MustTrace("e", nil)
	if empty.MeanLength() != 0 || empty.Span() != 0 {
		t.Error("empty trace stats should be 0")
	}
	if tr.MeanDemand(0) != 0 {
		t.Error("zero-horizon demand should be 0")
	}
}

func TestAssignQueuesAndQueueMeans(t *testing.T) {
	tr := MustTrace("t", []Job{
		mkJob(0, simtime.Hour, 1),
		mkJob(0, 2*simtime.Hour, 1),
		mkJob(0, 5*simtime.Hour, 1),
	})
	tr.AssignQueues(2 * simtime.Hour)
	if tr.Jobs[0].Queue != QueueShort || tr.Jobs[1].Queue != QueueShort || tr.Jobs[2].Queue != QueueLong {
		t.Fatal("queue assignment broken")
	}
	if got := tr.MeanLengthByQueue(QueueShort); got != 90*simtime.Minute {
		t.Errorf("short mean = %v", got)
	}
	if got := tr.MeanLengthByQueue(QueueLong); got != 5*simtime.Hour {
		t.Errorf("long mean = %v", got)
	}
	none := MustTrace("n", nil)
	if none.MeanLengthByQueue(QueueShort) != 0 {
		t.Error("empty queue mean should be 0")
	}
}

func TestClassifyQueues(t *testing.T) {
	tr := MustTrace("t", []Job{
		mkJob(0, 30*simtime.Minute, 1),
		mkJob(0, 3*simtime.Hour, 1),
		mkJob(0, 10*simtime.Hour, 1),
		mkJob(0, 48*simtime.Hour, 1),
	})
	// Four-class ladder: ≤1h, ≤6h, ≤24h, rest.
	tr.ClassifyQueues([]simtime.Duration{simtime.Hour, 6 * simtime.Hour, 24 * simtime.Hour})
	want := []Queue{0, 1, 2, 3}
	for i, j := range tr.Jobs {
		if j.Queue != want[i] {
			t.Errorf("job %d in queue %v, want %v", i, j.Queue, want[i])
		}
	}
	// Empty ladder: everything in queue 0.
	tr.ClassifyQueues(nil)
	for _, j := range tr.Jobs {
		if j.Queue != 0 {
			t.Error("empty ladder should classify all jobs to queue 0")
		}
	}
}

func TestFilterLength(t *testing.T) {
	tr := MustTrace("t", []Job{
		mkJob(0, 2, 1),
		mkJob(0, 10, 1),
		mkJob(0, 100, 1),
	})
	f := tr.FilterLength(5, 50)
	if f.Len() != 1 || f.Jobs[0].Length != 10 {
		t.Errorf("FilterLength kept %d jobs", f.Len())
	}
}

func TestFilterCPUs(t *testing.T) {
	tr := MustTrace("t", []Job{
		mkJob(0, 10, 1),
		mkJob(0, 10, 4),
		mkJob(0, 10, 9),
	})
	f := tr.FilterCPUs(4)
	if f.Len() != 2 {
		t.Errorf("FilterCPUs kept %d jobs", f.Len())
	}
	for _, j := range f.Jobs {
		if j.CPUs > 4 {
			t.Error("kept an oversized job")
		}
	}
}

func TestSampleN(t *testing.T) {
	jobs := make([]Job, 100)
	for i := range jobs {
		jobs[i] = mkJob(simtime.Time(i), 10, 1)
	}
	tr := MustTrace("t", jobs)
	rng := rand.New(rand.NewSource(1))
	s := tr.SampleN(rng, 30)
	if s.Len() != 30 {
		t.Fatalf("SampleN = %d jobs", s.Len())
	}
	for i := 1; i < s.Len(); i++ {
		if s.Jobs[i].Arrival < s.Jobs[i-1].Arrival {
			t.Fatal("sample not in arrival order")
		}
	}
	all := tr.SampleN(rng, 1000)
	if all.Len() != 100 {
		t.Errorf("oversample should return all jobs, got %d", all.Len())
	}
}

func TestReplicate(t *testing.T) {
	tr := MustTrace("t", []Job{mkJob(10, 5, 1), mkJob(20, 5, 2)})
	r, err := tr.Replicate(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 6 {
		t.Fatalf("Replicate len = %d", r.Len())
	}
	if r.Jobs[2].Arrival != 110 || r.Jobs[5].Arrival != 220 {
		t.Errorf("shifted arrivals wrong: %v, %v", r.Jobs[2].Arrival, r.Jobs[5].Arrival)
	}
	if _, err := tr.Replicate(0, 100); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := tr.Replicate(2, 0); err == nil {
		t.Error("period=0 should error")
	}
}

func TestDemandSeries(t *testing.T) {
	// One job of 2 CPUs for exactly the first hour, one of 1 CPU for the
	// first 30 minutes of hour 2.
	tr := MustTrace("t", []Job{
		mkJob(0, simtime.Hour, 2),
		mkJob(simtime.Time(simtime.Hour), 30*simtime.Minute, 1),
	})
	s := tr.DemandSeries(3 * simtime.Hour)
	if len(s) != 3 {
		t.Fatalf("series len = %d", len(s))
	}
	if s[0] != 2 {
		t.Errorf("hour 0 demand = %v, want 2", s[0])
	}
	if s[1] != 0.5 {
		t.Errorf("hour 1 demand = %v, want 0.5", s[1])
	}
	if s[2] != 0 {
		t.Errorf("hour 2 demand = %v, want 0", s[2])
	}
	if tr.DemandSeries(0) != nil {
		t.Error("zero horizon should return nil")
	}
}

func TestDemandSeriesTruncatesAtHorizon(t *testing.T) {
	tr := MustTrace("t", []Job{mkJob(simtime.Time(30*simtime.Minute), 10*simtime.Hour, 1)})
	s := tr.DemandSeries(simtime.Hour)
	if len(s) != 1 || s[0] != 0.5 {
		t.Errorf("truncated series = %v", s)
	}
}

// Property: total CPU hours equals the integral of the demand series when
// all jobs fit inside the horizon.
func TestDemandConservation(t *testing.T) {
	f := func(raw []uint16) bool {
		jobs := make([]Job, 0, len(raw))
		for i, v := range raw {
			jobs = append(jobs, Job{
				Arrival: simtime.Time(v % 1000),
				Length:  simtime.Duration(v%300) + 1,
				CPUs:    int(v%5) + 1,
				ID:      i,
			})
		}
		tr := MustTrace("t", jobs)
		horizon := 2000 * simtime.Minute // all jobs end well before this
		series := tr.DemandSeries(horizon)
		var integ float64
		for _, d := range series {
			integ += d // CPU·hours per hourly slot
		}
		return math.Abs(integ-tr.TotalCPUHours()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLengthAndCPUCDFs(t *testing.T) {
	tr := MustTrace("t", []Job{
		mkJob(0, 10, 1),
		mkJob(0, 20, 2),
		mkJob(0, 30, 4),
		mkJob(0, 40, 8),
	})
	lc := tr.LengthCDF()
	if lc.At(20) != 0.5 {
		t.Errorf("LengthCDF(20) = %v", lc.At(20))
	}
	cc := tr.CPUCDF()
	if cc.At(2) != 0.5 {
		t.Errorf("CPUCDF(2) = %v", cc.At(2))
	}
}
