package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/stats"
)

// Trace is an ordered collection of jobs — a cluster workload. Jobs are
// kept sorted by arrival time.
type Trace struct {
	Name string
	Jobs []Job
}

// fingerprints memoizes Trace.Fingerprint per trace instance. The memo is
// a side table (rather than a field) so Trace stays a plain copyable
// struct; traces are long-lived fixtures, so entries are never evicted.
var fingerprints sync.Map // *Trace → *[32]byte

// Fingerprint returns a content hash of the trace's scheduling-relevant
// content: the name and every job's ID, arrival, length, CPU demand and
// user. The Queue tag is deliberately excluded — the core scheduler
// re-classifies each job from its length and the configured queue bounds,
// so the tag never influences a simulation result (and AssignQueues may
// rewrite it on a trace that is otherwise shared immutably).
//
// The hash is memoized per trace instance on first use; callers must not
// mutate jobs after fingerprinting (the same immutability the concurrent
// sweep engine already relies on). It is the workload half of the
// content-addressed simulation cache key.
func (t *Trace) Fingerprint() [32]byte {
	if fp, ok := fingerprints.Load(t); ok {
		return *fp.(*[32]byte)
	}
	h := sha256.New()
	var buf [8]byte
	le := binary.LittleEndian
	le.PutUint64(buf[:], uint64(len(t.Name)))
	h.Write(buf[:])
	h.Write([]byte(t.Name))
	le.PutUint64(buf[:], uint64(len(t.Jobs)))
	h.Write(buf[:])
	for i := range t.Jobs {
		j := &t.Jobs[i]
		le.PutUint64(buf[:], uint64(j.ID))
		h.Write(buf[:])
		le.PutUint64(buf[:], uint64(j.Arrival))
		h.Write(buf[:])
		le.PutUint64(buf[:], uint64(j.Length))
		h.Write(buf[:])
		le.PutUint64(buf[:], uint64(j.CPUs))
		h.Write(buf[:])
		le.PutUint64(buf[:], uint64(len(j.User)))
		h.Write(buf[:])
		h.Write([]byte(j.User))
	}
	fp := new([32]byte)
	h.Sum(fp[:0])
	fingerprints.Store(t, fp)
	return *fp
}

// NewTrace builds a trace, sorting jobs by arrival and re-numbering IDs in
// arrival order. It returns an error if any job is malformed.
func NewTrace(name string, jobs []Job) (*Trace, error) {
	js := append([]Job(nil), jobs...)
	sort.SliceStable(js, func(i, j int) bool { return js[i].Arrival < js[j].Arrival })
	for i := range js {
		js[i].ID = i
		if err := js[i].Validate(); err != nil {
			return nil, err
		}
	}
	return &Trace{Name: name, Jobs: js}, nil
}

// MustTrace is NewTrace that panics on error.
func MustTrace(name string, jobs []Job) *Trace {
	tr, err := NewTrace(name, jobs)
	if err != nil {
		panic(err)
	}
	return tr
}

// Len returns the number of jobs.
func (t *Trace) Len() int { return len(t.Jobs) }

// Span returns the duration from time 0 to the last arrival.
func (t *Trace) Span() simtime.Duration {
	if len(t.Jobs) == 0 {
		return 0
	}
	return simtime.Duration(t.Jobs[len(t.Jobs)-1].Arrival)
}

// TotalCPUHours returns the total compute volume of the trace.
func (t *Trace) TotalCPUHours() float64 {
	var total float64
	for _, j := range t.Jobs {
		total += j.CPUHours()
	}
	return total
}

// MeanLength returns the mean job length, or 0 for an empty trace.
func (t *Trace) MeanLength() simtime.Duration {
	if len(t.Jobs) == 0 {
		return 0
	}
	var total simtime.Duration
	for _, j := range t.Jobs {
		total += j.Length
	}
	return total / simtime.Duration(len(t.Jobs))
}

// MeanLengthByQueue returns the mean job length of jobs in queue q — the
// queue-wide average Javg that Lowest-Window and Carbon-Time use as a
// coarse length estimate (paper §4.2.1). It returns 0 when the queue is
// empty.
func (t *Trace) MeanLengthByQueue(q Queue) simtime.Duration {
	var total simtime.Duration
	var n int
	for _, j := range t.Jobs {
		if j.Queue == q {
			total += j.Length
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / simtime.Duration(n)
}

// AssignQueues sets each job's queue from its true length: jobs with
// Length <= shortMax go to the short queue, the rest to the long queue.
// The paper assumes users classify jobs correctly (§6.1).
func (t *Trace) AssignQueues(shortMax simtime.Duration) {
	t.ClassifyQueues([]simtime.Duration{shortMax})
}

// ClassifyQueues assigns each job to the first queue whose length bound
// admits it. bounds[i] is the inclusive maximum length of queue i, in
// ascending order; jobs longer than every bound land in queue len(bounds)
// (the unbounded last queue). An empty bounds puts every job in queue 0.
func (t *Trace) ClassifyQueues(bounds []simtime.Duration) {
	for i := range t.Jobs {
		t.Jobs[i].Queue = ClassifyLength(t.Jobs[i].Length, bounds)
	}
}

// ClassifyLength returns the queue a job of the given length belongs to
// under the ascending bounds ladder (see ClassifyQueues). It lets callers
// classify jobs on the fly without mutating a shared trace.
func ClassifyLength(length simtime.Duration, bounds []simtime.Duration) Queue {
	for k, b := range bounds {
		if length <= b {
			return Queue(k)
		}
	}
	return Queue(len(bounds))
}

// MeanLengthsByBounds returns the mean job length of every queue of the
// bounds ladder (len(bounds)+1 entries, empty queues report 0), computed
// by classifying each job on the fly. Unlike ClassifyQueues +
// MeanLengthByQueue it leaves the trace untouched, so concurrent
// simulations can share one immutable trace.
func (t *Trace) MeanLengthsByBounds(bounds []simtime.Duration) []simtime.Duration {
	totals := make([]simtime.Duration, len(bounds)+1)
	counts := make([]int, len(bounds)+1)
	for _, j := range t.Jobs {
		q := ClassifyLength(j.Length, bounds)
		totals[q] += j.Length
		counts[q]++
	}
	for i := range totals {
		if counts[i] > 0 {
			totals[i] /= simtime.Duration(counts[i])
		}
	}
	return totals
}

// FilterLength drops jobs shorter than min or longer than max, the paper's
// trace-construction rule (jobs <5 min contribute almost no carbon; jobs
// >3 days gain little from diurnal shifting). It returns a new trace.
func (t *Trace) FilterLength(min, max simtime.Duration) *Trace {
	kept := make([]Job, 0, len(t.Jobs))
	for _, j := range t.Jobs {
		if j.Length < min || j.Length > max {
			continue
		}
		kept = append(kept, j)
	}
	return MustTrace(t.Name, kept)
}

// FilterCPUs drops jobs demanding more than max CPUs (the paper limits its
// prototype week trace to <=4-CPU jobs for budget reasons). It returns a
// new trace.
func (t *Trace) FilterCPUs(max int) *Trace {
	kept := make([]Job, 0, len(t.Jobs))
	for _, j := range t.Jobs {
		if j.CPUs <= max {
			kept = append(kept, j)
		}
	}
	return MustTrace(t.Name, kept)
}

// SampleN uniformly samples n jobs without replacement (all jobs when
// n >= Len), preserving arrival order. This mirrors the paper's uniform
// sampling of 100k-job and 1k-job traces.
func (t *Trace) SampleN(rng *rand.Rand, n int) *Trace {
	if n >= len(t.Jobs) {
		return MustTrace(t.Name, t.Jobs)
	}
	idx := rng.Perm(len(t.Jobs))[:n]
	sort.Ints(idx)
	jobs := make([]Job, 0, n)
	for _, i := range idx {
		jobs = append(jobs, t.Jobs[i])
	}
	return MustTrace(t.Name, jobs)
}

// Replicate tiles the trace end-to-end n times (the paper's "length
// extension" for building year-long traces from shorter ones). The span of
// one tile is period; arrivals of copy k are shifted by k*period.
func (t *Trace) Replicate(n int, period simtime.Duration) (*Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: replicate count %d must be positive", n)
	}
	if period <= 0 {
		return nil, fmt.Errorf("workload: replicate period %v must be positive", period)
	}
	jobs := make([]Job, 0, len(t.Jobs)*n)
	for k := 0; k < n; k++ {
		shift := simtime.Duration(k) * period
		for _, j := range t.Jobs {
			j.Arrival = j.Arrival.Add(shift)
			jobs = append(jobs, j)
		}
	}
	return NewTrace(t.Name, jobs)
}

// DemandSeries returns the aggregate CPU demand per hourly slot if every
// job ran immediately at arrival (the "original demand" of Figure 2a),
// covering [0, horizon).
func (t *Trace) DemandSeries(horizon simtime.Duration) []float64 {
	slots := int(horizon / simtime.Hour)
	if slots <= 0 {
		return nil
	}
	// Minute-resolution difference array, then aggregate to hourly means.
	// Partial trailing hours are dropped (the series covers whole slots).
	minutes := slots * 60
	diff := make([]int32, minutes+1)
	for _, j := range t.Jobs {
		s := int(j.Arrival)
		e := int(j.Arrival.Add(j.Length))
		if s >= minutes {
			continue
		}
		if e > minutes {
			e = minutes
		}
		diff[s] += int32(j.CPUs)
		diff[e] -= int32(j.CPUs)
	}
	out := make([]float64, slots)
	var cur int32
	for m := 0; m < minutes; m++ {
		cur += diff[m]
		out[m/60] += float64(cur)
	}
	for i := range out {
		out[i] /= 60
	}
	return out
}

// MeanDemand returns the time-averaged CPU demand over [0, horizon) —
// the paper's "mean demand" used to size reserved capacity (R in
// Figure 17).
func (t *Trace) MeanDemand(horizon simtime.Duration) float64 {
	if horizon <= 0 {
		return 0
	}
	return t.TotalCPUHours() / horizon.Hours()
}

// DemandCV returns the coefficient of variation of the hourly demand
// series — the paper reports 0.8 for Mustang-HPC and 0.3 for Azure-VM
// (§6.4.4).
func (t *Trace) DemandCV(horizon simtime.Duration) float64 {
	return stats.CV(t.DemandSeries(horizon))
}

// LengthCDF returns the empirical CDF of job lengths in minutes
// (Figure 5a).
func (t *Trace) LengthCDF() *stats.ECDF {
	xs := make([]float64, len(t.Jobs))
	for i, j := range t.Jobs {
		xs[i] = float64(j.Length)
	}
	return stats.NewECDF(xs)
}

// CPUCDF returns the empirical CDF of per-job CPU demand (Figure 5b).
func (t *Trace) CPUCDF() *stats.ECDF {
	xs := make([]float64, len(t.Jobs))
	for i, j := range t.Jobs {
		xs[i] = float64(j.CPUs)
	}
	return stats.NewECDF(xs)
}
