package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/carbonsched/gaia/internal/simtime"
)

// Malleable-trace CSV schema: the rigid trace columns plus the elasticity
// contract, one row per job —
//
//	id,arrival_min,length_min,cpus,queue,user,min_replicas,max_replicas,curve
//
// where curve is the ';'-separated marginal-throughput list (e.g.
// "1;0.9;0.75"). Precedence edges live in a companion CSV of
//
//	src,dst
//
// rows whose endpoints are the id column values of the malleable file, so
// real DAG traces keep their native job identifiers; NewElasticTrace
// renumbers both onto arrival order.

// WriteElasticCSV writes the elastic trace in the malleable schema (and is
// ReadElasticCSV's inverse up to ID renumbering).
func (et *ElasticTrace) WriteElasticCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"id", "arrival_min", "length_min", "cpus", "queue", "user",
		"min_replicas", "max_replicas", "curve"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("workload: writing header: %w", err)
	}
	for i, j := range et.Jobs.Jobs {
		sp := et.Specs[i]
		marg := make([]string, len(sp.Curve))
		for k, m := range sp.Curve {
			marg[k] = strconv.FormatFloat(m, 'g', -1, 64)
		}
		rec := []string{
			strconv.Itoa(j.ID),
			strconv.FormatInt(int64(j.Arrival), 10),
			strconv.FormatInt(int64(j.Length), 10),
			strconv.Itoa(j.CPUs),
			j.Queue.String(),
			j.User,
			strconv.Itoa(sp.MinReplicas),
			strconv.Itoa(sp.MaxReplicas),
			strings.Join(marg, ";"),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("workload: writing job %d: %w", j.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteEdgesCSV writes the precedence edges as src,dst rows (endpoints in
// the trace's normalized numbering, matching WriteElasticCSV's id column).
func (et *ElasticTrace) WriteEdgesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"src", "dst"}); err != nil {
		return fmt.Errorf("workload: writing header: %w", err)
	}
	for _, e := range et.Edges {
		if err := cw.Write([]string{strconv.Itoa(e.Src), strconv.Itoa(e.Dst)}); err != nil {
			return fmt.Errorf("workload: writing edge %d→%d: %w", e.Src, e.Dst, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadElasticCSV parses a malleable trace, optionally joined with a
// precedence-edge CSV (pass nil for a DAG-free trace). Edge endpoints are
// resolved against the jobs file's id column — ids must therefore be
// unique — and the result is normalized exactly like NewElasticTrace.
// Malformed rows, unknown ids, self/duplicate edges and cycles are
// rejected deterministically.
func ReadElasticCSV(name string, jobs io.Reader, edges io.Reader) (*ElasticTrace, error) {
	cr := csv.NewReader(jobs)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading elastic csv: %w", err)
	}
	if len(rows) < 1 {
		return nil, fmt.Errorf("workload: elastic csv has no rows")
	}
	js := make([]Job, 0, len(rows)-1)
	specs := make([]ElasticSpec, 0, len(rows)-1)
	rowOf := make(map[int64]int, len(rows)-1) // file id → position
	for i, row := range rows[1:] {
		if len(row) != 9 {
			return nil, fmt.Errorf("workload: row %d: want 9 fields, got %d", i+1, len(row))
		}
		fileID, errID := strconv.ParseInt(row[0], 10, 64)
		arrival, err1 := strconv.ParseInt(row[1], 10, 64)
		length, err2 := strconv.ParseInt(row[2], 10, 64)
		cpus, err3 := strconv.Atoi(row[3])
		minR, err4 := strconv.Atoi(row[6])
		maxR, err5 := strconv.Atoi(row[7])
		if errID != nil || err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
			return nil, fmt.Errorf("workload: row %d: malformed fields %v", i+1, row)
		}
		q, err := ParseQueue(row[4])
		if err != nil {
			return nil, fmt.Errorf("workload: row %d: %w", i+1, err)
		}
		curve, err := parseCurve(row[8])
		if err != nil {
			return nil, fmt.Errorf("workload: row %d: %w", i+1, err)
		}
		if _, dup := rowOf[fileID]; dup {
			return nil, fmt.Errorf("workload: row %d: duplicate job id %d", i+1, fileID)
		}
		rowOf[fileID] = len(js)
		js = append(js, Job{
			Arrival: simtime.Time(arrival),
			Length:  simtime.Duration(length),
			CPUs:    cpus,
			Queue:   q,
			User:    row[5],
		})
		specs = append(specs, ElasticSpec{MinReplicas: minR, MaxReplicas: maxR, Curve: curve})
	}

	var es []Edge
	if edges != nil {
		es, err = readEdges(edges, rowOf)
		if err != nil {
			return nil, err
		}
	}
	return NewElasticTrace(name, js, specs, es)
}

// parseCurve parses the ';'-separated marginal list.
func parseCurve(s string) (ScaleCurve, error) {
	parts := strings.Split(s, ";")
	c := make(ScaleCurve, 0, len(parts))
	for _, p := range parts {
		m, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: malformed curve %q", s)
		}
		c = append(c, m)
	}
	return c, nil
}

// readEdges parses src,dst rows, resolving endpoints through the jobs
// file's id column. Dangling references are rejected by name.
func readEdges(r io.Reader, rowOf map[int64]int) ([]Edge, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading edges csv: %w", err)
	}
	if len(rows) < 1 {
		return nil, fmt.Errorf("workload: edges csv has no rows")
	}
	es := make([]Edge, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != 2 {
			return nil, fmt.Errorf("workload: edge row %d: want 2 fields, got %d", i+1, len(row))
		}
		src, err1 := strconv.ParseInt(row[0], 10, 64)
		dst, err2 := strconv.ParseInt(row[1], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("workload: edge row %d: malformed fields %v", i+1, row)
		}
		si, ok := rowOf[src]
		if !ok {
			return nil, fmt.Errorf("workload: edge row %d: unknown job id %d", i+1, src)
		}
		di, ok := rowOf[dst]
		if !ok {
			return nil, fmt.Errorf("workload: edge row %d: unknown job id %d", i+1, dst)
		}
		es = append(es, Edge{Src: si, Dst: di})
	}
	return es, nil
}
