package workload

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/carbonsched/gaia/internal/simtime"
)

func TestWorkloadCSVRoundTrip(t *testing.T) {
	tr := AlibabaPAI().GenerateByCount(rand.New(rand.NewSource(1)), 200, simtime.Week)
	tr.AssignQueues(2 * simtime.Hour)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("roundtrip", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip length %d != %d", got.Len(), tr.Len())
	}
	for i := range tr.Jobs {
		a, b := tr.Jobs[i], got.Jobs[i]
		if a.Arrival != b.Arrival || a.Length != b.Length || a.CPUs != b.CPUs || a.Queue != b.Queue {
			t.Fatalf("job %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestWorkloadReadCSVErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"badArrival", "h,h,h,h,h\n0,x,10,1,short\n"},
		{"badLength", "h,h,h,h,h\n0,0,x,1,short\n"},
		{"badCPUs", "h,h,h,h,h\n0,0,10,x,short\n"},
		{"badQueue", "h,h,h,h,h\n0,0,10,1,weird\n"},
		{"invalidJob", "h,h,h,h,h\n0,0,0,1,short\n"},
		{"wrongFields", "h,h,h,h,h\n0,0,10\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV("x", strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestWorkloadReadCSVHeaderOnly(t *testing.T) {
	got, err := ReadCSV("x", strings.NewReader("id,arrival_min,length_min,cpus,queue\n"))
	if err != nil || got.Len() != 0 {
		t.Errorf("header-only = %v, %v", got, err)
	}
}
