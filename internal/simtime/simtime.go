// Package simtime provides the discrete time model used throughout the
// GAIA simulator.
//
// Simulated time is an integer number of minutes since the start of the
// simulation. Carbon-intensity data is hourly, so one simulated year is
// 365 days of 24 hourly slots. Keeping time integral makes event ordering
// exact and window arithmetic (carbon integrals over job intervals)
// reproducible across platforms.
package simtime

import "fmt"

// Time is an instant, in minutes since the start of the simulation.
type Time int64

// Duration is a span of simulated time in minutes.
type Duration int64

// Common durations.
const (
	Minute Duration = 1
	Hour   Duration = 60 * Minute
	Day    Duration = 24 * Hour
	Week   Duration = 7 * Day
	Year   Duration = 365 * Day
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from o to t.
func (t Time) Sub(o Time) Duration { return Duration(t - o) }

// HourIndex returns the number of whole hours elapsed since the start of
// the simulation. It is the index into an hourly trace. Negative times
// floor toward negative infinity so that HourIndex is monotone.
func (t Time) HourIndex() int {
	if t >= 0 {
		return int(t / Time(Hour))
	}
	return int((t - Time(Hour) + 1) / Time(Hour))
}

// HourOfDay returns the hour-of-day in [0, 24).
func (t Time) HourOfDay() int {
	h := t.HourIndex() % 24
	if h < 0 {
		h += 24
	}
	return h
}

// MinuteOfHour returns the minute within the current hour in [0, 60).
func (t Time) MinuteOfHour() int {
	m := int64(t) % 60
	if m < 0 {
		m += 60
	}
	return int(m)
}

// DayIndex returns the number of whole days elapsed since the start of the
// simulation.
func (t Time) DayIndex() int {
	if t >= 0 {
		return int(t / Time(Day))
	}
	return int((t - Time(Day) + 1) / Time(Day))
}

// monthDays is the day count per month of the simulator's 365-day calendar
// (no leap years; simulations start on January 1st).
var monthDays = [12]int{31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}

// monthStartDay[m] is the zero-based day-of-year on which month m begins.
var monthStartDay = func() [13]int {
	var s [13]int
	for m, d := range monthDays {
		s[m+1] = s[m] + d
	}
	return s
}()

// Month returns the zero-based month (0 = January .. 11 = December) of t
// within its simulated year.
func (t Time) Month() int {
	doy := t.DayIndex() % 365
	if doy < 0 {
		doy += 365
	}
	for m := 0; m < 12; m++ {
		if doy < monthStartDay[m+1] {
			return m
		}
	}
	return 11
}

// MonthName returns the English name of t's month.
func (t Time) MonthName() string { return monthNames[t.Month()] }

var monthNames = [12]string{
	"January", "February", "March", "April", "May", "June",
	"July", "August", "September", "October", "November", "December",
}

// MonthInterval returns the [start, end) interval of the zero-based month m
// in the first simulated year. It panics if m is outside [0, 12).
func MonthInterval(m int) Interval {
	if m < 0 || m >= 12 {
		panic(fmt.Sprintf("simtime: month %d out of range", m))
	}
	return Interval{
		Start: Time(Duration(monthStartDay[m]) * Day),
		End:   Time(Duration(monthStartDay[m+1]) * Day),
	}
}

// String formats the time as d<days>h<hours>m<minutes>, e.g. "d12h07m30".
func (t Time) String() string {
	return fmt.Sprintf("d%02dh%02dm%02d", t.DayIndex(), t.HourOfDay(), t.MinuteOfHour())
}

// Hours returns the duration in (possibly fractional) hours.
func (d Duration) Hours() float64 { return float64(d) / float64(Hour) }

// Days returns the duration in (possibly fractional) days.
func (d Duration) Days() float64 { return float64(d) / float64(Day) }

// Minutes returns the duration as a minute count.
func (d Duration) Minutes() int64 { return int64(d) }

// String formats the duration compactly, e.g. "4h30m" or "15m".
func (d Duration) String() string {
	neg := ""
	if d < 0 {
		neg = "-"
		d = -d
	}
	h := d / Hour
	m := d % Hour
	switch {
	case h == 0:
		return fmt.Sprintf("%s%dm", neg, m)
	case m == 0:
		return fmt.Sprintf("%s%dh", neg, h)
	default:
		return fmt.Sprintf("%s%dh%dm", neg, h, m)
	}
}

// HoursDur converts fractional hours to a Duration, rounding to the
// nearest minute.
func HoursDur(h float64) Duration {
	if h < 0 {
		return -HoursDur(-h)
	}
	return Duration(h*60 + 0.5)
}

// Min returns the smaller of a and b.
func Min(a, b Duration) Duration {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// MinTime returns the earlier of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxTime returns the later of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Interval is a half-open time span [Start, End).
type Interval struct {
	Start Time
	End   Time
}

// Len returns the interval's length. Empty or inverted intervals have
// length 0.
func (iv Interval) Len() Duration {
	if iv.End <= iv.Start {
		return 0
	}
	return iv.End.Sub(iv.Start)
}

// IsEmpty reports whether the interval contains no instants.
func (iv Interval) IsEmpty() bool { return iv.End <= iv.Start }

// Contains reports whether t lies within [Start, End).
func (iv Interval) Contains(t Time) bool { return t >= iv.Start && t < iv.End }

// Intersect returns the overlap of two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	r := Interval{Start: MaxTime(iv.Start, o.Start), End: MinTime(iv.End, o.End)}
	if r.End < r.Start {
		r.End = r.Start
	}
	return r
}

// String formats the interval as "[start, end)".
func (iv Interval) String() string {
	return fmt.Sprintf("[%s, %s)", iv.Start, iv.End)
}
