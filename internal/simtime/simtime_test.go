package simtime

import (
	"testing"
	"testing/quick"
)

func TestHourIndex(t *testing.T) {
	tests := []struct {
		t    Time
		want int
	}{
		{0, 0},
		{59, 0},
		{60, 1},
		{61, 1},
		{119, 1},
		{120, 2},
		{Time(Day), 24},
		{-1, -1},
		{-60, -1},
		{-61, -2},
	}
	for _, tt := range tests {
		if got := tt.t.HourIndex(); got != tt.want {
			t.Errorf("Time(%d).HourIndex() = %d, want %d", tt.t, got, tt.want)
		}
	}
}

func TestHourOfDayAndMinute(t *testing.T) {
	tm := Time(0).Add(3*Day + 7*Hour + 25*Minute)
	if got := tm.HourOfDay(); got != 7 {
		t.Errorf("HourOfDay = %d, want 7", got)
	}
	if got := tm.MinuteOfHour(); got != 25 {
		t.Errorf("MinuteOfHour = %d, want 25", got)
	}
	if got := tm.DayIndex(); got != 3 {
		t.Errorf("DayIndex = %d, want 3", got)
	}
}

func TestMonth(t *testing.T) {
	tests := []struct {
		day   int
		month int
	}{
		{0, 0},    // Jan 1
		{30, 0},   // Jan 31
		{31, 1},   // Feb 1
		{58, 1},   // Feb 28
		{59, 2},   // Mar 1
		{364, 11}, // Dec 31
		{365, 0},  // wraps to Jan 1 of year 2
	}
	for _, tt := range tests {
		tm := Time(Duration(tt.day) * Day)
		if got := tm.Month(); got != tt.month {
			t.Errorf("day %d: Month() = %d, want %d", tt.day, got, tt.month)
		}
	}
}

func TestMonthIntervalCoversYear(t *testing.T) {
	var total Duration
	prevEnd := Time(0)
	for m := 0; m < 12; m++ {
		iv := MonthInterval(m)
		if iv.Start != prevEnd {
			t.Errorf("month %d starts at %v, want %v", m, iv.Start, prevEnd)
		}
		total += iv.Len()
		prevEnd = iv.End
	}
	if total != Year {
		t.Errorf("months total %v, want %v", total, Year)
	}
}

func TestMonthIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MonthInterval(12) did not panic")
		}
	}()
	MonthInterval(12)
}

func TestDurationString(t *testing.T) {
	tests := []struct {
		d    Duration
		want string
	}{
		{0, "0m"},
		{15 * Minute, "15m"},
		{Hour, "1h"},
		{4*Hour + 30*Minute, "4h30m"},
		{-90 * Minute, "-1h30m"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("Duration(%d).String() = %q, want %q", tt.d, got, tt.want)
		}
	}
}

func TestTimeString(t *testing.T) {
	tm := Time(0).Add(12*Day + 7*Hour + 30*Minute)
	if got := tm.String(); got != "d12h07m30" {
		t.Errorf("String() = %q", got)
	}
}

func TestHoursDur(t *testing.T) {
	if got := HoursDur(4.5); got != 4*Hour+30*Minute {
		t.Errorf("HoursDur(4.5) = %v", got)
	}
	if got := HoursDur(0); got != 0 {
		t.Errorf("HoursDur(0) = %v", got)
	}
	if got := HoursDur(-2); got != -2*Hour {
		t.Errorf("HoursDur(-2) = %v", got)
	}
	// Rounds to nearest minute.
	if got := HoursDur(1.0 / 60.0); got != Minute {
		t.Errorf("HoursDur(1/60) = %v, want 1m", got)
	}
}

func TestIntervalIntersect(t *testing.T) {
	a := Interval{Start: 10, End: 20}
	tests := []struct {
		b    Interval
		want Interval
	}{
		{Interval{0, 5}, Interval{10, 10}},   // disjoint before
		{Interval{25, 30}, Interval{25, 25}}, // disjoint after
		{Interval{5, 15}, Interval{10, 15}},  // left overlap
		{Interval{15, 25}, Interval{15, 20}}, // right overlap
		{Interval{12, 18}, Interval{12, 18}}, // contained
		{Interval{0, 30}, Interval{10, 20}},  // containing
	}
	for _, tt := range tests {
		got := a.Intersect(tt.b)
		if got.Len() != tt.want.Len() || (got.Len() > 0 && got != tt.want) {
			t.Errorf("Intersect(%v, %v) = %v, want %v", a, tt.b, got, tt.want)
		}
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Start: 10, End: 20}
	if iv.Len() != 10 {
		t.Errorf("Len = %v", iv.Len())
	}
	if !iv.Contains(10) || iv.Contains(20) || !iv.Contains(19) {
		t.Error("Contains half-open semantics violated")
	}
	empty := Interval{Start: 20, End: 10}
	if empty.Len() != 0 || !empty.IsEmpty() {
		t.Error("inverted interval should be empty")
	}
}

func TestMinMaxHelpers(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min broken")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max broken")
	}
	if MinTime(3, 5) != 3 || MaxTime(3, 5) != 5 {
		t.Error("MinTime/MaxTime broken")
	}
}

// Property: intersect is commutative and result is contained in both.
func TestIntersectProperties(t *testing.T) {
	f := func(a0, a1, b0, b1 int16) bool {
		a := Interval{Start: Time(a0), End: Time(a1)}
		b := Interval{Start: Time(b0), End: Time(b1)}
		x := a.Intersect(b)
		y := b.Intersect(a)
		if x.Len() != y.Len() {
			return false
		}
		if x.Len() > 0 {
			if x.Start < a.Start || x.End > a.End || x.Start < b.Start || x.End > b.End {
				return false
			}
		}
		return x.Len() <= a.Len() && x.Len() <= b.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: HourIndex is monotone non-decreasing in time.
func TestHourIndexMonotone(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := Time(a), Time(b)
		if x > y {
			x, y = y, x
		}
		return x.HourIndex() <= y.HourIndex()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Month is always in [0, 12) and month boundaries agree with
// MonthInterval.
func TestMonthWithinRange(t *testing.T) {
	f := func(a int32) bool {
		m := Time(a).Month()
		return m >= 0 && m < 12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for m := 0; m < 12; m++ {
		iv := MonthInterval(m)
		if iv.Start.Month() != m {
			t.Errorf("start of month %d reports month %d", m, iv.Start.Month())
		}
		if last := iv.End.Add(-Minute); last.Month() != m {
			t.Errorf("end-1 of month %d reports month %d", m, last.Month())
		}
	}
}
