package policy

import (
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// NoWait runs every job immediately on arrival: the carbon- and
// cost-agnostic baseline.
type NoWait struct{}

// Name implements Policy.
func (NoWait) Name() string { return "NoWait" }

// Decide implements Policy.
func (NoWait) Decide(_ workload.Job, now simtime.Time, _ *Context) Decision {
	return Decision{Start: now}
}

// AllWait is the cost-aware baseline (AllWait-Threshold in the paper,
// after Ambati et al.): a job waits for a reserved unit up to its queue's
// maximum waiting time, then runs on on-demand capacity. The policy itself
// only pins the fallback start at now+W; the scheduler's work-conserving
// mechanism (core.Config.WorkConserving) starts the job earlier the moment
// reserved capacity frees up.
type AllWait struct{}

// Name implements Policy.
func (AllWait) Name() string { return "AllWait-Threshold" }

// Decide implements Policy.
func (AllWait) Decide(job workload.Job, now simtime.Time, ctx *Context) Decision {
	return Decision{Start: now.Add(ctx.Queue(job.Queue).MaxWait)}
}

// LowestSlot starts the job at the lowest-carbon-intensity hourly slot
// within the waiting window. It needs no job-length knowledge at all
// (paper §4.2.1).
type LowestSlot struct{}

// Name implements Policy.
func (LowestSlot) Name() string { return "Lowest-Slot" }

// Decide implements Policy. With oracle fast paths enabled (see
// Context.EnableFastPaths) the answer is a precomputed sliding-window
// argmin lookup; otherwise it falls back to the reference scan.
func (p LowestSlot) Decide(job workload.Job, now simtime.Time, ctx *Context) Decision {
	if t := ctx.fastTab(job.Queue); t != nil {
		if d, ok := ctx.fastLowestSlot(t, now); ok {
			return d
		}
	}
	return p.referenceDecide(job, now, ctx)
}

// referenceDecide is the direct O(W) scan the fast path is differential-
// tested against.
func (LowestSlot) referenceDecide(job workload.Job, now simtime.Time, ctx *Context) Decision {
	w := ctx.Queue(job.Queue).MaxWait
	best := now
	bestCI := ctx.CIS.Intensity(now)
	for _, s := range ctx.candidateStarts(now, w) {
		if ci := ctx.CIS.Intensity(s); ci < bestCI {
			best, bestCI = s, ci
		}
	}
	return Decision{Start: best}
}

// LowestWindow starts the job where the carbon integral over the next
// Javg (the queue-average length — a coarse estimate, since the scheduler
// does not know the true length) is minimal (paper §4.2.1).
type LowestWindow struct{}

// Name implements Policy.
func (LowestWindow) Name() string { return "Lowest-Window" }

// Decide implements Policy. With oracle fast paths enabled the G_L
// window-integral array and its sliding argmin answer in O(1); otherwise
// it falls back to the reference scan.
func (p LowestWindow) Decide(job workload.Job, now simtime.Time, ctx *Context) Decision {
	if t := ctx.fastTab(job.Queue); t != nil {
		if d, ok := ctx.fastLowestWindow(t, now); ok {
			return d
		}
	}
	return p.referenceDecide(job, now, ctx)
}

// referenceDecide is the direct O(W) scan the fast path is differential-
// tested against.
func (LowestWindow) referenceDecide(job workload.Job, now simtime.Time, ctx *Context) Decision {
	w := ctx.Queue(job.Queue).MaxWait
	est := estimatedLength(job, ctx)
	best := now
	bestC := ctx.CIS.ForecastIntegral(now, simtime.Interval{Start: now, End: now.Add(est)})
	for _, s := range ctx.candidateStarts(now, w) {
		c := ctx.CIS.ForecastIntegral(now, simtime.Interval{Start: s, End: s.Add(est)})
		if c < bestC {
			best, bestC = s, c
		}
	}
	return Decision{Start: best}
}

// CarbonTime is GAIA's carbon- and performance-aware policy: it maximizes
// the Carbon Saving per unit of Completion Time,
//
//	CST(s) = (C(now) − C(s)) / (s + Javg − now),
//
// so a long delay is only chosen when it buys proportionally more carbon
// (paper §4.2.2). When no candidate start saves carbon it runs
// immediately.
type CarbonTime struct{}

// Name implements Policy.
func (CarbonTime) Name() string { return "Carbon-Time" }

// Decide implements Policy. With oracle fast paths enabled the CST scan
// reads precomputed window integrals (no forecast calls, no allocations);
// otherwise it falls back to the reference scan.
func (p CarbonTime) Decide(job workload.Job, now simtime.Time, ctx *Context) Decision {
	if t := ctx.fastTab(job.Queue); t != nil {
		if d, ok := ctx.fastCarbonTime(t, now); ok {
			return d
		}
	}
	return p.referenceDecide(job, now, ctx)
}

// referenceDecide is the direct O(W) scan the fast path is differential-
// tested against.
func (CarbonTime) referenceDecide(job workload.Job, now simtime.Time, ctx *Context) Decision {
	return carbonTimeScan(job, now, ctx, ctx.Queue(job.Queue).MaxWait)
}

// carbonTimeScan is the CST maximization over an explicit waiting window w,
// shared between CarbonTime (w = the queue's MaxWait) and CriticalPathShift
// (w additionally capped by the job's precedence slack).
func carbonTimeScan(job workload.Job, now simtime.Time, ctx *Context, w simtime.Duration) Decision {
	est := estimatedLength(job, ctx)
	baseline := ctx.CIS.ForecastIntegral(now, simtime.Interval{Start: now, End: now.Add(est)})
	best := now
	bestCST := 0.0
	for _, s := range ctx.candidateStarts(now, w) {
		c := ctx.CIS.ForecastIntegral(now, simtime.Interval{Start: s, End: s.Add(est)})
		saving := baseline - c
		if saving <= 0 {
			continue
		}
		completion := s.Add(est).Sub(now).Hours()
		if completion <= 0 {
			continue
		}
		if cst := saving / completion; cst > bestCST {
			best, bestCST = s, cst
		}
	}
	return Decision{Start: best}
}
