package policy

import (
	"sort"

	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// ElasticJobView is the allocator-visible state of one running (or
// suspended) malleable job at a reallocation boundary. Remaining is the
// serial-equivalent work left in minutes; Replicas is the current
// allocation (0 = suspended).
type ElasticJobView struct {
	ID        int
	Queue     workload.Queue
	CPUs      int // per-replica width
	Min, Max  int
	Curve     workload.ScaleCurve
	Remaining float64
	Replicas  int
}

// ElasticAllocator reallocates replicas across the running malleable jobs
// at every hour boundary — the CarbonScaler control loop. Allocate returns
// one replica grant per view (same order). Grants are advisory: the
// scheduler clamps each to [Min, Max], forbids suspension (a zero grant)
// unless Min is 0 and the job's waiting-time guarantee still has room, and
// always honours the base width max(Min, 1). capacity is the CPU budget
// for replicas beyond the base widths (base allocations are pre-granted
// and not counted): the scheduler passes the reserved pool's idle capacity
// at the boundary, further capped by Config.ElasticCapacity when that is
// positive, so scale-ups ride capacity that is already paid for and are
// free by construction. A negative capacity (never produced by the
// scheduler) lifts the bound for direct callers.
//
// Implementations must be deterministic pure functions of their arguments
// — allocations are part of the simulation cache key via the config
// fingerprint, so hidden state would poison cached results.
type ElasticAllocator interface {
	// Name returns the allocator's display name.
	Name() string
	// Allocate chooses replica grants for the boundary at now.
	Allocate(jobs []ElasticJobView, now simtime.Time, capacity int, ctx *Context) []int
}

// StaticAlloc pins every job to its base width max(Min, 1): elasticity
// machinery on, no actual scaling — the rigid reference point of the
// elastic figure suite and the default allocator.
type StaticAlloc struct{}

// Name implements ElasticAllocator.
func (StaticAlloc) Name() string { return "Static-Min" }

// Allocate implements ElasticAllocator.
func (StaticAlloc) Allocate(jobs []ElasticJobView, _ simtime.Time, _ int, _ *Context) []int {
	grants := make([]int, len(jobs))
	for i, v := range jobs {
		grants[i] = v.Min
		if grants[i] < 1 {
			grants[i] = 1
		}
	}
	return grants
}

// GreedyMarginal is the CarbonScaler-style marginal-capacity allocator:
// each hour it compares the hour's carbon intensity against the
// forecast 24-hour mean (the "greenness" g — below 1 is a clean hour) and
// grants extra replicas to the jobs with the highest marginal throughput
// per CPU while each marginal clears ScaleThreshold·g; in dirty hours
// (g ≥ PreemptAbove) preemptible jobs (Min 0) are suspended outright.
// Replicas therefore concentrate work into the cleanest hours of the day,
// paying the scale curve's inefficiency only when the carbon price of an
// hour is low enough to cover it.
type GreedyMarginal struct {
	// ScaleThreshold is the marginal-throughput floor per unit greenness a
	// replica must clear to be granted (default 0.75).
	ScaleThreshold float64
	// PreemptAbove is the greenness at which preemptible jobs suspend
	// (default 1.25 — a quarter dirtier than the daily mean).
	PreemptAbove float64
}

// Name implements ElasticAllocator.
func (GreedyMarginal) Name() string { return "Greedy-Marginal" }

// Allocate implements ElasticAllocator.
func (a GreedyMarginal) Allocate(jobs []ElasticJobView, now simtime.Time, capacity int, ctx *Context) []int {
	thresh := a.ScaleThreshold
	if thresh <= 0 {
		thresh = 0.75
	}
	preempt := a.PreemptAbove
	if preempt <= 0 {
		preempt = 1.25
	}
	g := greenness(ctx, now)

	grants := make([]int, len(jobs))
	type cand struct {
		job   int
		r     int // replica index being added (0-based marginal)
		value float64
	}
	var cands []cand
	for i, v := range jobs {
		base := v.Min
		if base < 1 {
			base = 1
		}
		if v.Min == 0 && g >= preempt {
			grants[i] = 0
			continue
		}
		grants[i] = base
		for r := base; r < v.Max; r++ {
			m := v.Curve[r]
			if m < thresh*g {
				break // marginals are non-increasing: later replicas fail too
			}
			cands = append(cands, cand{job: i, r: r, value: m / float64(v.CPUs)})
		}
	}
	// Highest marginal throughput per CPU first; ties by job then replica
	// index, which also guarantees replica r is granted before r+1.
	sort.Slice(cands, func(x, y int) bool {
		if cands[x].value != cands[y].value {
			return cands[x].value > cands[y].value
		}
		if cands[x].job != cands[y].job {
			return jobs[cands[x].job].ID < jobs[cands[y].job].ID
		}
		return cands[x].r < cands[y].r
	})
	budget := capacity
	for _, c := range cands {
		w := jobs[c.job].CPUs
		if capacity >= 0 {
			if budget < w {
				continue
			}
			budget -= w
		}
		grants[c.job]++
	}
	return grants
}

// greenness is the hour's forecast carbon integral relative to the
// forecast daily mean: 1 means an average hour, below 1 cleaner than
// average. A zero daily integral (an all-zero trace) reports 1.
func greenness(ctx *Context, now simtime.Time) float64 {
	hour := ctx.CIS.ForecastIntegral(now, simtime.Interval{Start: now, End: now.Add(simtime.Hour)})
	day := ctx.CIS.ForecastIntegral(now, simtime.Interval{Start: now, End: now.Add(24 * simtime.Hour)})
	if day <= 0 {
		return 1
	}
	return hour / (day / 24)
}

// CriticalPathShift is the DAG-aware shifter: it runs the Carbon-Time
// objective, but a job's waiting window is capped by its precedence slack
// (Context.SlackFn, critical-path analysis over the DAG), so zero-slack
// jobs start as early as Carbon-Time's no-saving fallback would and only
// off-critical-path jobs shift — the schedule saves carbon without
// stretching the DAG's completion the way blanket shifting does. Jobs
// without precedence edges keep their full queue window, making the policy
// identical to Carbon-Time on edge-free traces.
type CriticalPathShift struct{}

// Name implements Policy.
func (CriticalPathShift) Name() string { return "Critical-Path" }

// Decide implements Policy.
func (CriticalPathShift) Decide(job workload.Job, now simtime.Time, ctx *Context) Decision {
	w := ctx.Queue(job.Queue).MaxWait
	if ctx.SlackFn != nil {
		if s, ok := ctx.SlackFn(job.ID); ok && s < w {
			w = s
		}
	}
	return carbonTimeScan(job, now, ctx, w)
}
