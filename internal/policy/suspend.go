package policy

import (
	"sort"

	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/stats"
	"github.com/carbonsched/gaia/internal/workload"
)

// WaitAwhile is the suspend-resume baseline of Wiesner et al.: it knows
// the exact job length J and a deadline (here now + J + W, matching the
// paper's configuration), and executes the job in the lowest-carbon slots
// summing to J within that deadline, pausing in between.
type WaitAwhile struct{}

// Name implements Policy.
func (WaitAwhile) Name() string { return "WaitAwhile" }

// Decide implements Policy. With oracle fast paths enabled the CI rank
// of the deadline's slots comes from a per-hour cache (computed once per
// arrival hour, not per job); otherwise it falls back to the reference
// per-job sort.
func (p WaitAwhile) Decide(job workload.Job, now simtime.Time, ctx *Context) Decision {
	if ctx.ftrace != nil {
		if d, ok := ctx.fastWaitAwhile(job, now); ok {
			return d
		}
	}
	return p.referenceDecide(job, now, ctx)
}

// referenceDecide is the per-job sort-and-pick the fast path is
// differential-tested against.
func (WaitAwhile) referenceDecide(job workload.Job, now simtime.Time, ctx *Context) Decision {
	w := ctx.Queue(job.Queue).MaxWait
	deadline := now.Add(job.Length + w)
	slots := hourSlots(now, deadline)
	// Sort candidate slots by (CI, time); earlier slots win ties so
	// completion time is minimized at equal carbon.
	sort.SliceStable(slots, func(i, j int) bool {
		ci, cj := ctx.CIS.Intensity(slots[i].Start), ctx.CIS.Intensity(slots[j].Start)
		if ci != cj {
			return ci < cj
		}
		return slots[i].Start < slots[j].Start
	})
	picked := make([]simtime.Interval, 0, len(slots))
	var total simtime.Duration
	for _, s := range slots {
		if total >= job.Length {
			break
		}
		need := job.Length - total
		if s.Len() > need {
			// Trim: CI is constant within the slot, so keeping the
			// earliest portion minimizes completion time.
			s.End = s.Start.Add(need)
		}
		picked = append(picked, s)
		total += s.Len()
	}
	sort.Slice(picked, func(i, j int) bool { return picked[i].Start < picked[j].Start })
	return Decision{Plan: mergeAdjacent(picked)}
}

// Ecovisor is the greedy-threshold suspend-resume baseline of Souza et
// al.: run whenever the current CI is below the 30th percentile of the
// next 24 hours (computed at arrival), pause otherwise; once the job has
// waited its queue's full allowance it runs to completion regardless.
type Ecovisor struct {
	// ThresholdPercentile is the CI percentile below which the job runs;
	// 0 means the paper's 30.
	ThresholdPercentile float64
}

// Name implements Policy.
func (Ecovisor) Name() string { return "Ecovisor" }

// Decide implements Policy.
func (e Ecovisor) Decide(job workload.Job, now simtime.Time, ctx *Context) Decision {
	pct := e.ThresholdPercentile
	if pct <= 0 {
		pct = 30
	}
	// Threshold: percentile of hourly CI over the next 24 h. The samples
	// land in a Context scratch array and are sorted in place — the
	// percentile arithmetic is unchanged, only the copy is gone.
	next24 := ctx.next24[:]
	for h := 0; h < 24; h++ {
		next24[h] = ctx.CIS.Intensity(now.Add(simtime.Duration(h) * simtime.Hour))
	}
	threshold, err := stats.PercentileInPlace(next24, pct)
	if err != nil {
		threshold = ctx.CIS.Intensity(now)
	}

	w := ctx.Queue(job.Queue).MaxWait
	plan := ctx.picked[:0]
	remaining := job.Length
	var paused simtime.Duration
	cur := now
	for remaining > 0 {
		slotEnd := simtime.Time((cur.HourIndex() + 1) * int(simtime.Hour))
		if ctx.CIS.Intensity(cur) < threshold {
			run := simtime.Min(slotEnd.Sub(cur), remaining)
			plan = append(plan, simtime.Interval{Start: cur, End: cur.Add(run)})
			remaining -= run
			cur = cur.Add(run)
			continue
		}
		pause := slotEnd.Sub(cur)
		if paused+pause >= w {
			// Waiting allowance exhausted mid-pause: start at the
			// allowance boundary and run to completion.
			start := cur.Add(w - paused)
			plan = append(plan, simtime.Interval{Start: start, End: start.Add(remaining)})
			remaining = 0
			break
		}
		paused += pause
		cur = slotEnd
	}
	ctx.picked = plan
	return Decision{Plan: mergedCopy(plan)}
}

// WaitAwhileEst is this implementation's realization of the paper's
// stated future work (§4.1): suspend-resume scheduling inside GAIA
// itself, i.e. without Wait Awhile's exact-length knowledge. It plans the
// lowest-carbon slots summing to the queue-average length Javg within
// [now, now + Javg + W]; the simulator truncates the plan if the job is
// shorter and runs past the final window if it is longer.
type WaitAwhileEst struct{}

// Name implements Policy.
func (WaitAwhileEst) Name() string { return "WaitAwhile-Est" }

// Decide implements Policy.
func (WaitAwhileEst) Decide(job workload.Job, now simtime.Time, ctx *Context) Decision {
	est := estimatedLength(job, ctx)
	surrogate := job
	surrogate.Length = est
	return WaitAwhile{}.Decide(surrogate, now, ctx)
}

// hourSlots splits [from, to) into hour-aligned candidate slots; the first
// and last may be partial.
func hourSlots(from, to simtime.Time) []simtime.Interval {
	var out []simtime.Interval
	cur := from
	for cur < to {
		slotEnd := simtime.Time((cur.HourIndex() + 1) * int(simtime.Hour))
		end := simtime.MinTime(slotEnd, to)
		out = append(out, simtime.Interval{Start: cur, End: end})
		cur = end
	}
	return out
}

// mergeAdjacent coalesces touching intervals of an ascending plan.
func mergeAdjacent(ivs []simtime.Interval) []simtime.Interval {
	if len(ivs) == 0 {
		return nil
	}
	out := []simtime.Interval{ivs[0]}
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Start == last.End {
			last.End = iv.End
		} else {
			out = append(out, iv)
		}
	}
	return out
}
