package policy

import (
	"sort"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// EnableFastPaths switches the slot-granular policies (Lowest-Slot,
// Lowest-Window, Carbon-Time) and WaitAwhile onto the precomputed oracle
// tables of the underlying trace (see carbon.Oracle). It is effective
// only when the CIS is a perfect-knowledge service — the one case where a
// forecast is a pure function of (trace, interval), making precomputation
// sound; for any other CIS (noisy, trained forecasters) the call is a
// no-op and every Decide takes the reference path.
//
// Decisions are bit-identical with and without fast paths: tables are
// populated through the same Value/Integral calls the reference scans
// make, and the differential tests in this package pin that equivalence.
// The Queues map must not be mutated afterwards.
func (c *Context) EnableFastPaths() {
	ps, ok := c.CIS.(*carbon.PerfectService)
	if !ok {
		return
	}
	tr := ps.Trace()
	maxQ := -1
	for q := range c.Queues {
		if int(q) > maxQ {
			maxQ = int(q)
		}
	}
	o := tr.Oracle()
	fast := make([]*carbon.QueueTables, maxQ+1)
	for q, info := range c.Queues {
		if int(q) < 0 {
			continue
		}
		l := info.AvgLength
		if l <= 0 {
			l = simtime.Hour // estimatedLength's fallback
		}
		fast[q] = o.Queue(info.MaxWait, l)
	}
	c.ftrace = tr
	c.fast = fast
	if c.ranks == nil {
		c.ranks = make(map[int]hourRank)
	}
}

// FastPathHits returns how many decisions were answered from the oracle
// tables; tests use it to prove the fast path actually ran.
func (c *Context) FastPathHits() int64 { return c.fastHits }

// fastTab returns the job queue's oracle tables, or nil when fast paths
// are disabled or the queue has none.
func (c *Context) fastTab(q workload.Queue) *carbon.QueueTables {
	if int(q) >= 0 && int(q) < len(c.fast) {
		return c.fast[q]
	}
	return nil
}

// hourStart is the first minute of hourly slot j.
func hourStart(j int) simtime.Time {
	return simtime.Time(simtime.Duration(j) * simtime.Hour)
}

// fastLowestSlot answers Lowest-Slot from the tables: the leftmost argmin
// over candidate slots [i0, i0+k] is precomputed, and candidate i0 maps
// to the minute-precise start `now` just as in the reference scan.
func (c *Context) fastLowestSlot(t *carbon.QueueTables, now simtime.Time) (Decision, bool) {
	if now < 0 {
		return Decision{}, false
	}
	k, ok := t.Boundaries(now)
	if !ok {
		return Decision{}, false
	}
	i0 := now.HourIndex()
	j, ok := t.LowestSlot(i0, k)
	if !ok {
		return Decision{}, false
	}
	c.fastHits++
	if j == i0 {
		return Decision{Start: now}, true
	}
	return Decision{Start: hourStart(j)}, true
}

// fastLowestWindow answers Lowest-Window: the boundary-slot argmin of the
// precomputed G_L window array, compared against the minute-precise
// baseline window starting at now — the same two floats the reference
// compares, in the same strict-< order.
func (c *Context) fastLowestWindow(t *carbon.QueueTables, now simtime.Time) (Decision, bool) {
	if now < 0 {
		return Decision{}, false
	}
	k, ok := t.Boundaries(now)
	if !ok {
		return Decision{}, false
	}
	i0 := now.HourIndex()
	if !t.Covers(i0, k) {
		return Decision{}, false
	}
	c.fastHits++
	if k < 1 {
		return Decision{Start: now}, true
	}
	j, _ := t.LowestWindow(i0, k)
	est := t.EstLength()
	baseline := t.Integral(simtime.Interval{Start: now, End: now.Add(est)})
	if t.WindowSum(j) < baseline {
		return Decision{Start: hourStart(j)}, true
	}
	return Decision{Start: now}, true
}

// fastCarbonTime answers Carbon-Time. The CST objective depends on the
// arrival minute (both the baseline window and every completion time
// shift with it), so the boundary candidates cannot collapse into a
// static argmin table; instead the scan reads the precomputed G_L values
// — no Integral calls, no allocations — reproducing the reference's
// arithmetic term for term: same saving subtraction, same completion
// division, same strict-> comparison against a best initialized to 0.
func (c *Context) fastCarbonTime(t *carbon.QueueTables, now simtime.Time) (Decision, bool) {
	if now < 0 {
		return Decision{}, false
	}
	k, ok := t.Boundaries(now)
	if !ok {
		return Decision{}, false
	}
	i0 := now.HourIndex()
	if !t.Covers(i0, k) {
		return Decision{}, false
	}
	c.fastHits++
	est := t.EstLength()
	baseline := t.Integral(simtime.Interval{Start: now, End: now.Add(est)})
	best := now
	bestCST := 0.0
	for j := i0 + 1; j <= i0+k; j++ {
		saving := baseline - t.WindowSum(j)
		if saving <= 0 {
			continue
		}
		s := hourStart(j)
		completion := s.Add(est).Sub(now).Hours()
		if completion <= 0 {
			continue
		}
		if cst := saving / completion; cst > bestCST {
			best, bestCST = s, cst
		}
	}
	return Decision{Start: best}, true
}

// hourRank is the CI-sorted ordering of hourly slots [hour, iDmax],
// computed once per arrival-hour bucket and reused by every WaitAwhile
// decision whose deadline falls inside it. Keys are (CI, index) — a
// strict total order — so filtering the superset to any shorter deadline
// preserves exactly the order a per-job stable sort would produce.
type hourRank struct {
	iDmax int
	order []int32
}

// fastWaitAwhile answers WaitAwhile from the per-hour CI rank: greedily
// take the cheapest slots up to the deadline (earliest first within equal
// CI), trim the final slot to the exact length, then emit the merged plan
// in time order. Slot boundaries, trims and merges mirror the reference
// implementation value for value.
func (c *Context) fastWaitAwhile(job workload.Job, now simtime.Time) (Decision, bool) {
	if now < 0 {
		return Decision{}, false
	}
	w := c.Queue(job.Queue).MaxWait
	if w < 0 {
		return Decision{}, false
	}
	deadline := now.Add(job.Length + w)
	if deadline <= now {
		return Decision{}, false
	}
	c.fastHits++
	i0 := now.HourIndex()
	iD := (deadline - 1).HourIndex()
	order := c.rankOrder(i0, iD)

	picked := c.picked[:0]
	var total simtime.Duration
	for _, idx := range order {
		if total >= job.Length {
			break
		}
		i := int(idx)
		if i > iD {
			continue
		}
		s := simtime.Interval{Start: hourStart(i), End: hourStart(i + 1)}
		if i == i0 {
			s.Start = now
		}
		if deadline < s.End {
			s.End = deadline
		}
		if need := job.Length - total; s.Len() > need {
			s.End = s.Start.Add(need)
		}
		picked = append(picked, s)
		total += s.Len()
	}
	c.picked = picked
	sortIntervalsByStart(picked)
	return Decision{Plan: mergedCopy(picked)}, true
}

// rankOrder returns slot indices [i0, >=iD] sorted by (CI, index),
// extending the cached bucket when a later deadline needs more slots.
func (c *Context) rankOrder(i0, iD int) []int32 {
	r, ok := c.ranks[i0]
	if ok && iD <= r.iDmax {
		return r.order
	}
	idx := make([]int32, iD-i0+1)
	for i := range idx {
		idx[i] = int32(i0 + i)
	}
	tr := c.ftrace
	sort.Slice(idx, func(a, b int) bool {
		va, vb := tr.Value(int(idx[a])), tr.Value(int(idx[b]))
		if va != vb {
			return va < vb
		}
		return idx[a] < idx[b]
	})
	c.ranks[i0] = hourRank{iDmax: iD, order: idx}
	return idx
}

// sortIntervalsByStart orders a small plan by start time. Starts are
// unique (slots are disjoint), so insertion sort matches any comparison
// sort; it avoids sort.Slice's closure allocation on the hot path.
func sortIntervalsByStart(ivs []simtime.Interval) {
	for i := 1; i < len(ivs); i++ {
		iv := ivs[i]
		j := i - 1
		for j >= 0 && ivs[j].Start > iv.Start {
			ivs[j+1] = ivs[j]
			j--
		}
		ivs[j+1] = iv
	}
}

// mergedCopy is mergeAdjacent that never aliases its (scratch) input: it
// counts the coalesced runs first and returns an exact-size fresh slice —
// the single allocation a plan-producing decision keeps.
func mergedCopy(ivs []simtime.Interval) []simtime.Interval {
	if len(ivs) == 0 {
		return nil
	}
	runs := 1
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Start != ivs[i-1].End {
			runs++
		}
	}
	out := make([]simtime.Interval, 0, runs)
	out = append(out, ivs[0])
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Start == last.End {
			last.End = iv.End
		} else {
			out = append(out, iv)
		}
	}
	return out
}
