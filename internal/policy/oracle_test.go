package policy

// Oracle tests: re-verify each policy's decision against a brute-force
// evaluation of its declared objective over the same candidate set.

import (
	"math/rand"
	"testing"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

func randomCtx(seed int64, hours int) *Context {
	rng := rand.New(rand.NewSource(seed))
	values := make([]float64, hours)
	for i := range values {
		values[i] = 20 + rng.Float64()*600
	}
	return &Context{
		CIS: carbon.NewPerfectService(carbon.MustTrace("r", values)),
		Queues: map[workload.Queue]QueueInfo{
			workload.QueueShort: {MaxWait: 6 * simtime.Hour, AvgLength: 90 * simtime.Minute},
			workload.QueueLong:  {MaxWait: 24 * simtime.Hour, AvgLength: 5 * simtime.Hour},
		},
	}
}

func windowCarbon(ctx *Context, now, start simtime.Time, length simtime.Duration) float64 {
	return ctx.CIS.ForecastIntegral(now, simtime.Interval{Start: start, End: start.Add(length)})
}

// Lowest-Window's start must achieve the minimal window integral among
// all candidate starts.
func TestOracleLowestWindow(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		ctx := randomCtx(seed, 24*4)
		now := simtime.Time(seed * 37 % 2000)
		for _, job := range []workload.Job{shortJob(2 * simtime.Hour), longJob(8 * simtime.Hour)} {
			d := LowestWindow{}.Decide(job, now, ctx)
			est := estimatedLength(job, ctx)
			got := windowCarbon(ctx, now, d.Start, est)
			for _, s := range candidateStarts(now, ctx.Queue(job.Queue).MaxWait) {
				if c := windowCarbon(ctx, now, s, est); c < got-1e-9 {
					t.Fatalf("seed %d: start %v (%v) beaten by %v (%v)", seed, d.Start, got, s, c)
				}
			}
		}
	}
}

// Lowest-Slot's start must achieve the minimal instantaneous CI among all
// candidates.
func TestOracleLowestSlot(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		ctx := randomCtx(seed, 24*4)
		now := simtime.Time(seed * 53 % 2000)
		job := shortJob(simtime.Hour)
		d := LowestSlot{}.Decide(job, now, ctx)
		got := ctx.CIS.Intensity(d.Start)
		for _, s := range candidateStarts(now, ctx.Queue(job.Queue).MaxWait) {
			if c := ctx.CIS.Intensity(s); c < got-1e-9 {
				t.Fatalf("seed %d: slot %v beaten by %v", seed, d.Start, s)
			}
		}
	}
}

// Carbon-Time's start must maximize CST; and when it delays, the chosen
// start's CST must be positive.
func TestOracleCarbonTime(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		ctx := randomCtx(seed, 24*4)
		now := simtime.Time(seed * 71 % 2000)
		job := longJob(6 * simtime.Hour)
		est := estimatedLength(job, ctx)
		baseline := windowCarbon(ctx, now, now, est)
		cst := func(s simtime.Time) float64 {
			saving := baseline - windowCarbon(ctx, now, s, est)
			completion := s.Add(est).Sub(now).Hours()
			if completion <= 0 {
				return 0
			}
			return saving / completion
		}
		d := CarbonTime{}.Decide(job, now, ctx)
		got := cst(d.Start)
		for _, s := range candidateStarts(now, ctx.Queue(job.Queue).MaxWait) {
			if c := cst(s); c > got+1e-9 && c > 0 {
				t.Fatalf("seed %d: CST %v at %v beaten by %v at %v", seed, got, d.Start, c, s)
			}
		}
		if d.Start != now && got <= 0 {
			t.Fatalf("seed %d: delayed to %v with non-positive CST %v", seed, d.Start, got)
		}
	}
}

// WaitAwhile's plan must emit no more carbon than any same-length plan
// built from a random subset of slots in the same deadline window.
func TestOracleWaitAwhileVsRandomPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for seed := int64(1); seed <= 10; seed++ {
		ctx := randomCtx(seed, 24*4)
		now := simtime.Time(seed * 97 % 1000)
		job := shortJob(3 * simtime.Hour)
		d := WaitAwhile{}.Decide(job, now, ctx)
		planC := 0.0
		for _, iv := range d.Plan {
			planC += ctx.CIS.ForecastIntegral(now, iv)
		}
		deadline := now.Add(job.Length + ctx.Queue(job.Queue).MaxWait)
		slots := hourSlots(now, deadline)
		for trial := 0; trial < 30; trial++ {
			perm := rng.Perm(len(slots))
			var total simtime.Duration
			var c float64
			for _, idx := range perm {
				if total >= job.Length {
					break
				}
				s := slots[idx]
				need := job.Length - total
				if s.Len() > need {
					s.End = s.Start.Add(need)
				}
				c += ctx.CIS.ForecastIntegral(now, s)
				total += s.Len()
			}
			if total == job.Length && c < planC-1e-9 {
				t.Fatalf("seed %d: WaitAwhile plan (%v) beaten by random plan (%v)", seed, planC, c)
			}
		}
	}
}
