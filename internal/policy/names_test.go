package policy

import "testing"

func TestByNameRoundTrip(t *testing.T) {
	for _, tag := range Names() {
		p, err := ByName(tag)
		if err != nil {
			t.Fatalf("ByName(%q): %v", tag, err)
		}
		if p == nil {
			t.Fatalf("ByName(%q) returned nil policy", tag)
		}
	}
	// Case-insensitive.
	if _, err := ByName("Carbon-Time"); err != nil {
		t.Fatalf("ByName is not case-insensitive: %v", err)
	}
	if _, err := ByName("no-such-policy"); err == nil {
		t.Fatal("unknown tag accepted")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != 9 {
		t.Fatalf("Names() has %d entries, want 9", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %q before %q", names[i-1], names[i])
		}
	}
}
