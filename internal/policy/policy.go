// Package policy implements GAIA's scheduling policies and the baselines
// the paper compares against (Table 1):
//
//	NoWait            carbon- and cost-agnostic, runs jobs on arrival
//	AllWait           cost-aware: wait for reserved capacity up to W
//	Lowest-Slot       carbon-aware, no length knowledge
//	Lowest-Window     carbon-aware, knows the queue-average length
//	Carbon-Time       carbon- and performance-aware (maximizes carbon
//	                  saving per unit completion time)
//	Wait Awhile       suspend-resume, knows the exact job length
//	Ecovisor          suspend-resume, greedy CI threshold
//
// Cost awareness (RES-First work conservation, Spot-First placement and
// the combined Spot-RES) is orthogonal to the start-time choice and lives
// in the core scheduler's configuration; see package core.
package policy

import (
	"fmt"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// QueueInfo is the scheduler-configured knowledge about one job queue:
// the guaranteed maximum waiting time W and the historical average job
// length Javg that length-oblivious policies use as a coarse estimate.
type QueueInfo struct {
	MaxWait   simtime.Duration
	AvgLength simtime.Duration
}

// Context is everything a policy may consult when choosing a schedule.
// Policies must not use Job.Length unless they are declared
// length-aware (Table 1) — the simulator passes the true length in the
// job for execution purposes only.
//
// A Context also carries per-run decision state: scratch buffers reused
// across Decide calls and, after EnableFastPaths, the precomputed oracle
// tables (see carbon.Oracle). A Context must therefore not be shared by
// concurrently running simulations — each core.Run builds its own, while
// the immutable tables underneath are shared across the whole sweep.
type Context struct {
	CIS    carbon.Service
	Queues map[workload.Queue]QueueInfo

	// SlackFn, when set by the scheduler for DAG workloads, reports a
	// job's precedence slack — how long it can wait without stretching its
	// DAG's critical path (ok false for jobs outside any DAG). Only
	// DAG-aware policies (CriticalPathShift) consult it.
	SlackFn func(jobID int) (simtime.Duration, bool)

	// Oracle fast-path state (EnableFastPaths). fast is indexed by queue;
	// ftrace is the perfect-knowledge trace the tables were derived from.
	fast     []*carbon.QueueTables
	ftrace   *carbon.Trace
	ranks    map[int]hourRank
	fastHits int64

	// Scratch buffers reused across Decide calls on this Context.
	starts []simtime.Time
	picked []simtime.Interval
	next24 [24]float64
}

// Queue returns the queue info, or a zero QueueInfo for unknown queues.
func (c *Context) Queue(q workload.Queue) QueueInfo { return c.Queues[q] }

// Decision is a policy's verdict for one job: either an uninterruptible
// start time (Plan nil) or a suspend-resume execution plan — a list of
// disjoint, ascending execution windows. The simulator consumes windows
// until the job's true length is done: a plan that overshoots is
// truncated, and if the windows run out first (a plan built from a length
// *estimate*) the job keeps running past the final window to completion.
// Length-exact policies (Wait Awhile) emit plans totalling exactly J, so
// they execute as given.
type Decision struct {
	Start simtime.Time
	Plan  []simtime.Interval
}

// IsPlan reports whether the decision is a suspend-resume plan.
func (d Decision) IsPlan() bool { return len(d.Plan) > 0 }

// End returns when execution completes given the job length.
func (d Decision) End(length simtime.Duration) simtime.Time {
	if d.IsPlan() {
		return d.Plan[len(d.Plan)-1].End
	}
	return d.Start.Add(length)
}

// Validate checks plan well-formedness: windows must be non-empty,
// disjoint, ascending, and not precede now. (Totals need not equal the
// job length — see Decision — but an exact-knowledge policy's plan should;
// ExactCoverage checks that stronger property.)
func (d Decision) Validate(job workload.Job, now simtime.Time) error {
	if !d.IsPlan() {
		if d.Start < now {
			return fmt.Errorf("policy: start %v before now %v", d.Start, now)
		}
		return nil
	}
	prev := now
	for i, iv := range d.Plan {
		if iv.IsEmpty() {
			return fmt.Errorf("policy: plan interval %d is empty", i)
		}
		if iv.Start < prev {
			return fmt.Errorf("policy: plan interval %d overlaps or precedes now", i)
		}
		prev = iv.End
	}
	return nil
}

// ExactCoverage reports whether the plan's windows total exactly length.
func (d Decision) ExactCoverage(length simtime.Duration) bool {
	var total simtime.Duration
	for _, iv := range d.Plan {
		total += iv.Len()
	}
	return total == length
}

// NormalizePlan fits a plan's execution windows to a job's true length:
// windows are consumed until the length is done (truncating the last
// one), and if the windows run out first — a plan built from a length
// estimate — the final window is extended so the job runs to completion.
// The input plan must be non-empty and valid.
func NormalizePlan(plan []simtime.Interval, length simtime.Duration) []simtime.Interval {
	out := make([]simtime.Interval, 0, len(plan))
	remaining := length
	for _, iv := range plan {
		if iv.Len() >= remaining {
			out = append(out, simtime.Interval{Start: iv.Start, End: iv.Start.Add(remaining)})
			remaining = 0
			break
		}
		out = append(out, iv)
		remaining -= iv.Len()
	}
	if remaining > 0 {
		out[len(out)-1].End = out[len(out)-1].End.Add(remaining)
	}
	return out
}

// Policy chooses when a job runs. Implementations must return decisions
// whose (first) start lies within [now, now + W] for the job's queue.
type Policy interface {
	// Name returns the paper's name for the policy.
	Name() string
	// Decide schedules the job that arrived at now.
	Decide(job workload.Job, now simtime.Time, ctx *Context) Decision
}

// candidateStarts enumerates the start instants a slot-granular policy
// considers inside [now, now+w]: now itself plus every hourly boundary in
// (now, now+w]. The paper's policies pick among hourly CI slots; finer
// granularity would not change the objective because CI is constant within
// a slot.
func candidateStarts(now simtime.Time, w simtime.Duration) []simtime.Time {
	return appendCandidateStarts(nil, now, w)
}

// candidateStarts is the scratch-buffer variant used on the Decide hot
// path: the enumeration is identical, but the backing array is reused
// across calls so steady-state decisions allocate nothing.
func (c *Context) candidateStarts(now simtime.Time, w simtime.Duration) []simtime.Time {
	c.starts = appendCandidateStarts(c.starts[:0], now, w)
	return c.starts
}

func appendCandidateStarts(out []simtime.Time, now simtime.Time, w simtime.Duration) []simtime.Time {
	out = append(out, now)
	if w <= 0 {
		return out
	}
	latest := now.Add(w)
	// First hourly boundary strictly after now.
	b := simtime.Time((now.HourIndex() + 1) * int(simtime.Hour))
	for ; b <= latest; b = b.Add(simtime.Hour) {
		out = append(out, b)
	}
	return out
}

// estimatedLength returns the length estimate available to a
// length-oblivious policy: the queue average when configured, else one
// hour as a harmless default.
func estimatedLength(job workload.Job, ctx *Context) simtime.Duration {
	if info, ok := ctx.Queues[job.Queue]; ok && info.AvgLength > 0 {
		return info.AvgLength
	}
	return simtime.Hour
}
