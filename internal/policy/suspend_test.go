package policy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

func planCarbon(cis carbon.Service, d Decision, length simtime.Duration) float64 {
	if !d.IsPlan() {
		return cis.ForecastIntegral(0, simtime.Interval{Start: d.Start, End: d.Start.Add(length)})
	}
	var total float64
	for _, iv := range d.Plan {
		total += cis.ForecastIntegral(0, iv)
	}
	return total
}

func TestWaitAwhilePicksLowestSlots(t *testing.T) {
	// 2 h job, W=6h ⇒ deadline hour 8. Cheapest two slots are 3 and 5.
	values := []float64{400, 300, 350, 50, 500, 40, 600, 700, 800, 900}
	ctx := testCtx(values, simtime.Hour, 4*simtime.Hour)
	job := shortJob(2 * simtime.Hour)
	d := WaitAwhile{}.Decide(job, 0, ctx)
	if !d.IsPlan() {
		t.Fatal("WaitAwhile must return a plan")
	}
	if err := d.Validate(job, 0); err != nil {
		t.Fatal(err)
	}
	want := []simtime.Interval{
		{Start: simtime.Time(3 * simtime.Hour), End: simtime.Time(4 * simtime.Hour)},
		{Start: simtime.Time(5 * simtime.Hour), End: simtime.Time(6 * simtime.Hour)},
	}
	if len(d.Plan) != 2 || d.Plan[0] != want[0] || d.Plan[1] != want[1] {
		t.Errorf("plan = %v, want %v", d.Plan, want)
	}
}

func TestWaitAwhileContiguousWhenCheapest(t *testing.T) {
	// Falling then rising CI: the trough hours are adjacent; the plan
	// should merge into one interval.
	values := []float64{500, 400, 100, 110, 400, 500, 600, 700, 800}
	ctx := testCtx(values, simtime.Hour, 4*simtime.Hour)
	job := shortJob(2 * simtime.Hour)
	d := WaitAwhile{}.Decide(job, 0, ctx)
	if len(d.Plan) != 1 {
		t.Fatalf("plan = %v, want single merged interval", d.Plan)
	}
	if d.Plan[0].Start != simtime.Time(2*simtime.Hour) || d.Plan[0].Len() != 2*simtime.Hour {
		t.Errorf("plan = %v", d.Plan)
	}
}

func TestWaitAwhileTrimsPartialHour(t *testing.T) {
	values := []float64{400, 50, 400, 400, 400, 400, 400, 400, 400}
	ctx := testCtx(values, simtime.Hour, 4*simtime.Hour)
	job := shortJob(90 * simtime.Minute) // 1.5 h
	d := WaitAwhile{}.Decide(job, 0, ctx)
	if err := d.Validate(job, 0); err != nil {
		t.Fatal(err)
	}
	var total simtime.Duration
	for _, iv := range d.Plan {
		total += iv.Len()
	}
	if total != 90*simtime.Minute {
		t.Errorf("plan total = %v", total)
	}
	// The cheapest slot (hour 1) must be fully used; the remaining 30 min
	// land in the earliest expensive slot.
	fullHourUsed := false
	for _, iv := range d.Plan {
		if iv.Start == simtime.Time(simtime.Hour) && iv.Len() == simtime.Hour {
			fullHourUsed = true
		}
	}
	if !fullHourUsed {
		t.Errorf("plan = %v, should use all of hour 1", d.Plan)
	}
}

// Property: WaitAwhile, which knows the exact length and may suspend, never
// emits more carbon than the best uninterruptible policy with the same
// window.
func TestWaitAwhileDominatesLowestWindow(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		values := make([]float64, 24*5)
		for i := range values {
			values[i] = 20 + rng.Float64()*600
		}
		tr := carbon.MustTrace("t", values)
		ctx := &Context{
			CIS: carbon.NewPerfectService(tr),
			Queues: map[workload.Queue]QueueInfo{
				workload.QueueShort: {MaxWait: 6 * simtime.Hour, AvgLength: 2 * simtime.Hour},
			},
		}
		job := shortJob(2 * simtime.Hour) // estimate == true length
		now := simtime.Time(rng.Intn(10 * 60))
		wa := WaitAwhile{}.Decide(job, now, ctx)
		lw := LowestWindow{}.Decide(job, now, ctx)
		return planCarbon(ctx.CIS, wa, job.Length) <= planCarbon(ctx.CIS, lw, job.Length)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEcovisorRunsInCheapSlots(t *testing.T) {
	// First 6 hours expensive, rest cheap: the job should pause then run.
	values := []float64{900, 900, 900, 100, 100, 100, 900, 900,
		900, 900, 900, 900, 900, 900, 900, 900,
		900, 900, 900, 900, 900, 900, 900, 900, 900}
	ctx := testCtx(values, simtime.Hour, 4*simtime.Hour)
	job := shortJob(2 * simtime.Hour)
	d := Ecovisor{}.Decide(job, 0, ctx)
	if err := d.Validate(job, 0); err != nil {
		t.Fatal(err)
	}
	if d.Plan[0].Start != simtime.Time(3*simtime.Hour) {
		t.Errorf("Ecovisor first run at %v, want hour 3", d.Plan[0].Start)
	}
}

func TestEcovisorRespectsWaitBudget(t *testing.T) {
	// Uniformly expensive (above own threshold is impossible — threshold
	// is a percentile of the same values — so craft: one cheap hour far
	// beyond the budget).
	values := make([]float64, 48)
	for i := range values {
		values[i] = 900
	}
	values[20] = 10 // below the 30th percentile, but 20 h away
	ctx := testCtx(values, simtime.Hour, 4*simtime.Hour)
	job := shortJob(simtime.Hour) // short queue: W = 6 h
	d := Ecovisor{}.Decide(job, 0, ctx)
	if err := d.Validate(job, 0); err != nil {
		t.Fatal(err)
	}
	// Total pause must be exactly the 6 h budget (the cheap hour is out of
	// reach), so the job starts at hour 6.
	if d.Plan[0].Start != simtime.Time(6*simtime.Hour) {
		t.Errorf("Ecovisor start = %v, want hour 6 (budget exhausted)", d.Plan[0].Start)
	}
}

func TestEcovisorImmediateWhenCheap(t *testing.T) {
	// Current slot is the cheapest: run immediately without pause.
	values := []float64{10, 900, 900, 900, 900, 900, 900, 900,
		900, 900, 900, 900, 900, 900, 900, 900,
		900, 900, 900, 900, 900, 900, 900, 900, 900}
	ctx := testCtx(values, simtime.Hour, 4*simtime.Hour)
	job := shortJob(30 * simtime.Minute)
	d := Ecovisor{}.Decide(job, 5, ctx)
	if d.Plan[0].Start != 5 {
		t.Errorf("Ecovisor start = %v, want now", d.Plan[0].Start)
	}
}

func TestEcovisorCustomPercentile(t *testing.T) {
	values := make([]float64, 30)
	for i := range values {
		values[i] = float64(100 + i*10)
	}
	ctx := testCtx(values, simtime.Hour, 4*simtime.Hour)
	job := shortJob(simtime.Hour)
	strict := Ecovisor{ThresholdPercentile: 5}.Decide(job, 0, ctx)
	loose := Ecovisor{ThresholdPercentile: 95}.Decide(job, 0, ctx)
	if strict.Plan[0].Start != loose.Plan[0].Start {
		// Rising CI: both should start immediately (now is cheapest), so
		// equal — this asserts the percentile plumbing doesn't crash and
		// behaves monotonely.
		t.Errorf("strict=%v loose=%v", strict.Plan[0].Start, loose.Plan[0].Start)
	}
}

// Property: Ecovisor plans always cover exactly the job length and pause
// at most W in total.
func TestEcovisorPlanProperty(t *testing.T) {
	f := func(seed int64, lenRaw uint16, nowRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		values := make([]float64, 24*6)
		for i := range values {
			values[i] = 20 + rng.Float64()*600
		}
		ctx := testCtx(values, simtime.Hour, 4*simtime.Hour)
		length := simtime.Duration(lenRaw%600) + 10
		job := shortJob(length)
		now := simtime.Time(nowRaw % 3000)
		d := Ecovisor{}.Decide(job, now, ctx)
		if d.Validate(job, now) != nil || !d.ExactCoverage(length) {
			return false
		}
		// Pause = completion − now − length must be within W.
		pause := d.End(length).Sub(now) - length
		return pause >= 0 && pause <= 6*simtime.Hour
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHourSlots(t *testing.T) {
	got := hourSlots(30, simtime.Time(150))
	want := []simtime.Interval{{Start: 30, End: 60}, {Start: 60, End: 120}, {Start: 120, End: 150}}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("hourSlots = %v, want %v", got, want)
	}
	if hourSlots(60, 60) != nil {
		t.Error("empty range should be nil")
	}
}

func TestMergeAdjacent(t *testing.T) {
	in := []simtime.Interval{{Start: 0, End: 60}, {Start: 60, End: 120}, {Start: 180, End: 240}}
	out := mergeAdjacent(in)
	if len(out) != 2 || out[0].Len() != 2*simtime.Hour || out[1].Start != 180 {
		t.Errorf("mergeAdjacent = %v", out)
	}
	if mergeAdjacent(nil) != nil {
		t.Error("nil in, nil out")
	}
}

func TestWaitAwhileExactCoverage(t *testing.T) {
	values := []float64{400, 300, 350, 50, 500, 40, 600, 700, 800, 900}
	ctx := testCtx(values, simtime.Hour, 4*simtime.Hour)
	for _, length := range []simtime.Duration{30 * simtime.Minute, 90 * simtime.Minute, 3 * simtime.Hour} {
		job := shortJob(length)
		d := WaitAwhile{}.Decide(job, 17, ctx)
		if !d.ExactCoverage(length) {
			t.Errorf("length %v: plan %v does not cover exactly", length, d.Plan)
		}
	}
}

func TestWaitAwhileEstUsesEstimate(t *testing.T) {
	// Queue average is 1h; the true length (3h) must not leak into the
	// plan, which therefore covers exactly 1h.
	values := []float64{400, 50, 400, 400, 400, 400, 400, 400, 400, 400}
	ctx := testCtx(values, simtime.Hour, 4*simtime.Hour)
	job := shortJob(3 * simtime.Hour)
	d := WaitAwhileEst{}.Decide(job, 0, ctx)
	if !d.IsPlan() {
		t.Fatal("WaitAwhileEst must plan")
	}
	if err := d.Validate(job, 0); err != nil {
		t.Fatal(err)
	}
	if !d.ExactCoverage(simtime.Hour) {
		t.Errorf("plan %v should cover the 1h estimate", d.Plan)
	}
	// It must still target the cheap slot.
	if d.Plan[0].Start != simtime.Time(simtime.Hour) {
		t.Errorf("plan %v should start at the hour-1 trough", d.Plan)
	}
	if (WaitAwhileEst{}).Name() != "WaitAwhile-Est" {
		t.Error("name")
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]Policy{
		"NoWait":            NoWait{},
		"AllWait-Threshold": AllWait{},
		"Lowest-Slot":       LowestSlot{},
		"Lowest-Window":     LowestWindow{},
		"Carbon-Time":       CarbonTime{},
		"WaitAwhile":        WaitAwhile{},
		"Ecovisor":          Ecovisor{},
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("Name() = %q, want %q", p.Name(), want)
		}
	}
}
