package policy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// testCtx builds a Context over the given hourly CI values with the
// paper's default queue configuration (Wshort=6h, Wlong=24h).
func testCtx(values []float64, avgShort, avgLong simtime.Duration) *Context {
	tr := carbon.MustTrace("test", values)
	return &Context{
		CIS: carbon.NewPerfectService(tr),
		Queues: map[workload.Queue]QueueInfo{
			workload.QueueShort: {MaxWait: 6 * simtime.Hour, AvgLength: avgShort},
			workload.QueueLong:  {MaxWait: 24 * simtime.Hour, AvgLength: avgLong},
		},
	}
}

func shortJob(length simtime.Duration) workload.Job {
	return workload.Job{ID: 1, Length: length, CPUs: 1, Queue: workload.QueueShort}
}

func longJob(length simtime.Duration) workload.Job {
	return workload.Job{ID: 2, Length: length, CPUs: 1, Queue: workload.QueueLong}
}

func TestNoWait(t *testing.T) {
	ctx := testCtx([]float64{500, 100, 100, 100, 100, 100, 100, 100}, simtime.Hour, 4*simtime.Hour)
	d := NoWait{}.Decide(shortJob(simtime.Hour), 90, ctx)
	if d.Start != 90 || d.IsPlan() {
		t.Errorf("NoWait decision = %+v", d)
	}
	if (NoWait{}).Name() != "NoWait" {
		t.Error("name")
	}
}

func TestAllWait(t *testing.T) {
	ctx := testCtx([]float64{100, 100}, simtime.Hour, 4*simtime.Hour)
	d := AllWait{}.Decide(shortJob(simtime.Hour), 10, ctx)
	if d.Start != simtime.Time(10+6*60) {
		t.Errorf("AllWait start = %v, want now+6h", d.Start)
	}
	d = AllWait{}.Decide(longJob(5*simtime.Hour), 10, ctx)
	if d.Start != simtime.Time(10+24*60) {
		t.Errorf("AllWait long start = %v, want now+24h", d.Start)
	}
}

func TestLowestSlotPicksMinCI(t *testing.T) {
	// Min CI within 6 h window is hour 3.
	ctx := testCtx([]float64{400, 300, 200, 50, 500, 600, 700, 800, 10}, simtime.Hour, 4*simtime.Hour)
	d := LowestSlot{}.Decide(shortJob(simtime.Hour), 0, ctx)
	if d.Start != simtime.Time(3*simtime.Hour) {
		t.Errorf("LowestSlot start = %v, want hour 3", d.Start)
	}
	// Hour 8's CI of 10 is outside the 6 h short window and must not win.
	if d.Start >= simtime.Time(7*simtime.Hour) {
		t.Error("LowestSlot exceeded waiting window")
	}
}

func TestLowestSlotMidSlotArrival(t *testing.T) {
	// Arriving mid-slot: "now" competes with hourly boundaries.
	ctx := testCtx([]float64{50, 400, 400, 400, 400, 400, 400, 400}, simtime.Hour, 4*simtime.Hour)
	d := LowestSlot{}.Decide(shortJob(simtime.Hour), 30, ctx)
	if d.Start != 30 {
		t.Errorf("LowestSlot start = %v, want 30 (stay in cheap current slot)", d.Start)
	}
}

func TestLowestWindowUsesEstimate(t *testing.T) {
	// Slot 2 has the lowest instantaneous CI, but a 2-hour window starting
	// at slot 4 is cheaper in total.
	values := []float64{400, 400, 100, 450, 120, 130, 400, 400}
	ctx := testCtx(values, 2*simtime.Hour, 4*simtime.Hour)
	d := LowestWindow{}.Decide(shortJob(90*simtime.Minute), 0, ctx)
	if d.Start != simtime.Time(4*simtime.Hour) {
		t.Errorf("LowestWindow start = %v, want hour 4", d.Start)
	}
	// LowestSlot would have picked slot 2 instead.
	ds := LowestSlot{}.Decide(shortJob(90*simtime.Minute), 0, ctx)
	if ds.Start != simtime.Time(2*simtime.Hour) {
		t.Errorf("LowestSlot start = %v, want hour 2", ds.Start)
	}
}

func TestCarbonTimeBalancesSavingAndDelay(t *testing.T) {
	// Waiting 1 h saves 300 g/kWh·h (CST≈150/h with a 1 h job); waiting
	// 6 h saves 390 (CST≈55.7/h). Carbon-Time must take the early slot,
	// Lowest-Window the late one.
	values := []float64{400, 100, 400, 400, 400, 400, 10, 400}
	ctx := testCtx(values, simtime.Hour, 4*simtime.Hour)
	dct := CarbonTime{}.Decide(shortJob(simtime.Hour), 0, ctx)
	if dct.Start != simtime.Time(simtime.Hour) {
		t.Errorf("CarbonTime start = %v, want hour 1", dct.Start)
	}
	dlw := LowestWindow{}.Decide(shortJob(simtime.Hour), 0, ctx)
	if dlw.Start != simtime.Time(6*simtime.Hour) {
		t.Errorf("LowestWindow start = %v, want hour 6", dlw.Start)
	}
}

func TestCarbonTimeRunsNowWithoutSavings(t *testing.T) {
	// Rising CI: no future start saves carbon.
	values := []float64{100, 200, 300, 400, 500, 600, 700, 800}
	ctx := testCtx(values, simtime.Hour, 4*simtime.Hour)
	d := CarbonTime{}.Decide(shortJob(simtime.Hour), 15, ctx)
	if d.Start != 15 {
		t.Errorf("CarbonTime start = %v, want now", d.Start)
	}
}

func TestDecisionValidate(t *testing.T) {
	job := shortJob(2 * simtime.Hour)
	good := Decision{Plan: []simtime.Interval{
		{Start: 60, End: 120},
		{Start: 180, End: 240},
	}}
	if err := good.Validate(job, 0); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
	cases := []Decision{
		{Start: -1},
		{Plan: []simtime.Interval{{Start: 60, End: 60}, {Start: 60, End: 180}}},   // empty interval
		{Plan: []simtime.Interval{{Start: 120, End: 180}, {Start: 60, End: 120}}}, // out of order
	}
	for i, d := range cases {
		if err := d.Validate(job, 0); err == nil {
			t.Errorf("case %d: invalid decision accepted", i)
		}
	}
	if err := (Decision{Start: 5}).Validate(job, 10); err == nil {
		t.Error("start before now accepted")
	}
	// Under-covering plans are valid (estimate-based policies); exact
	// coverage is a separate, stronger property.
	short := Decision{Plan: []simtime.Interval{{Start: 60, End: 120}}}
	if err := short.Validate(job, 0); err != nil {
		t.Errorf("under-covering plan rejected: %v", err)
	}
	if short.ExactCoverage(job.Length) {
		t.Error("1h plan should not exactly cover a 2h job")
	}
	if !good.ExactCoverage(job.Length) {
		t.Error("good plan should exactly cover the job")
	}
}

func TestCandidateStarts(t *testing.T) {
	// Candidates are now plus hourly boundaries up to now+W; now+W itself
	// (minute 150) is mid-slot and adds nothing over the slot's boundary.
	got := candidateStarts(30, 2*simtime.Hour)
	want := []simtime.Time{30, 60, 120}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates = %v, want %v", got, want)
		}
	}
	if cs := candidateStarts(30, 0); len(cs) != 1 || cs[0] != 30 {
		t.Errorf("zero window candidates = %v", cs)
	}
}

func TestEstimatedLengthFallback(t *testing.T) {
	ctx := &Context{Queues: map[workload.Queue]QueueInfo{}}
	if got := estimatedLength(shortJob(5*simtime.Hour), ctx); got != simtime.Hour {
		t.Errorf("fallback estimate = %v, want 1h", got)
	}
}

// Property: every uninterruptible policy starts within [now, now+W].
func TestStartWithinWindowProperty(t *testing.T) {
	policies := []Policy{NoWait{}, AllWait{}, LowestSlot{}, LowestWindow{}, CarbonTime{}}
	f := func(seed int64, nowRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		values := make([]float64, 24*10)
		for i := range values {
			values[i] = 50 + rng.Float64()*500
		}
		ctx := testCtx(values, simtime.Hour, 4*simtime.Hour)
		now := simtime.Time(nowRaw % 5000)
		for _, q := range []workload.Job{shortJob(2 * simtime.Hour), longJob(8 * simtime.Hour)} {
			w := ctx.Queue(q.Queue).MaxWait
			for _, p := range policies {
				d := p.Decide(q, now, ctx)
				if d.IsPlan() {
					return false
				}
				if d.Start < now || d.Start > now.Add(w) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
