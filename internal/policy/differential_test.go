package policy

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// diffPolicies is every policy in the package; the four oracle-backed ones
// plus the rest, which must be unaffected by EnableFastPaths.
func diffPolicies() []Policy {
	return []Policy{
		NoWait{}, AllWait{},
		LowestSlot{}, LowestWindow{}, CarbonTime{},
		WaitAwhile{}, WaitAwhileEst{}, Ecovisor{},
	}
}

// diffQueueConfigs covers the paper's default, a deliberately
// non-hour-aligned configuration, a zero-wait queue, and a three-queue
// ladder.
func diffQueueConfigs() []map[workload.Queue]QueueInfo {
	return []map[workload.Queue]QueueInfo{
		{
			workload.QueueShort: {MaxWait: 6 * simtime.Hour, AvgLength: 90 * simtime.Minute},
			workload.QueueLong:  {MaxWait: 24 * simtime.Hour, AvgLength: 5 * simtime.Hour},
		},
		{
			workload.QueueShort: {MaxWait: 90 * simtime.Minute, AvgLength: 100 * simtime.Minute},
			workload.QueueLong:  {MaxWait: 7*simtime.Hour + 30*simtime.Minute, AvgLength: 3*simtime.Hour + 17*simtime.Minute},
		},
		{
			workload.QueueShort: {MaxWait: 0, AvgLength: 45 * simtime.Minute},
			workload.QueueLong:  {MaxWait: 26 * simtime.Hour, AvgLength: 26 * simtime.Hour},
		},
		{
			workload.Queue(0): {MaxWait: simtime.Hour, AvgLength: 30 * simtime.Minute},
			workload.Queue(1): {MaxWait: 5 * simtime.Hour, AvgLength: 2 * simtime.Hour},
			workload.Queue(2): {MaxWait: 30 * simtime.Hour, AvgLength: 9 * simtime.Hour},
		},
	}
}

// diffTraces covers random CI series of two lengths, a tie-heavy quantized
// series (the argmin tie-breaking cases), a constant series (all ties), and
// a single-slot trace.
func diffTraces() []*carbon.Trace {
	random := func(seed int64, n int) *carbon.Trace {
		rng := rand.New(rand.NewSource(seed))
		values := make([]float64, n)
		for i := range values {
			values[i] = 30 + 700*rng.Float64()
		}
		return carbon.MustTrace("random", values)
	}
	quantized := func(seed int64, n int) *carbon.Trace {
		rng := rand.New(rand.NewSource(seed))
		values := make([]float64, n)
		for i := range values {
			values[i] = float64(1+rng.Intn(3)) * 100
		}
		return carbon.MustTrace("ties", values)
	}
	constant := make([]float64, 48)
	for i := range constant {
		constant[i] = 250
	}
	return []*carbon.Trace{
		random(1, 36),
		random(2, 173),
		quantized(3, 96),
		carbon.MustTrace("constant", constant),
		carbon.MustTrace("single", []float64{123}),
	}
}

func sortedQueues(queues map[workload.Queue]QueueInfo) []workload.Queue {
	out := make([]workload.Queue, 0, len(queues))
	for q := range queues {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestFastPathsMatchReferenceDecisions is the tentpole's differential
// test: for every policy, trace shape and queue configuration, a Context
// with fast paths enabled must return decisions reflect.DeepEqual to a
// plain Context that can only take the reference path. Arrival minutes are
// mostly non-hour-aligned, and some arrivals land past the trace horizon
// to exercise the coverage guards.
func TestFastPathsMatchReferenceDecisions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for ti, tr := range diffTraces() {
		for qi, queues := range diffQueueConfigs() {
			ctxFast := &Context{CIS: carbon.NewPerfectService(tr), Queues: queues}
			ctxFast.EnableFastPaths()
			ctxRef := &Context{CIS: carbon.NewPerfectService(tr), Queues: queues}
			qs := sortedQueues(queues)
			horizon := int64(tr.Horizon())
			for trial := 0; trial < 60; trial++ {
				now := simtime.Time(rng.Int63n(horizon + 3*int64(simtime.Hour)))
				if trial%5 == 0 {
					now -= now % 60 // some hour-aligned arrivals too
				}
				length := simtime.Duration(1 + rng.Int63n(int64(26*simtime.Hour)))
				job := workload.Job{
					ID:     trial,
					Length: length,
					CPUs:   1,
					Queue:  qs[rng.Intn(len(qs))],
				}
				for _, p := range diffPolicies() {
					dFast := p.Decide(job, now, ctxFast)
					dRef := p.Decide(job, now, ctxRef)
					if !reflect.DeepEqual(dFast, dRef) {
						t.Fatalf("trace %d, config %d, %s(queue=%d, len=%v, now=%v):\n fast = %+v\n ref  = %+v",
							ti, qi, p.Name(), job.Queue, length, now, dFast, dRef)
					}
				}
			}
			if ctxFast.FastPathHits() == 0 {
				t.Errorf("trace %d, config %d: fast path never hit", ti, qi)
			}
			if ctxRef.FastPathHits() != 0 {
				t.Errorf("trace %d, config %d: plain context took the fast path", ti, qi)
			}
		}
	}
}

// TestFastPathHitCounting pins that each oracle-backed policy actually
// answers from the tables on an ordinary in-horizon decision.
func TestFastPathHitCounting(t *testing.T) {
	ctx := testCtx([]float64{400, 100, 300, 200, 500, 50, 600, 250}, 90*simtime.Minute, 4*simtime.Hour)
	ctx.EnableFastPaths()
	for _, p := range []Policy{LowestSlot{}, LowestWindow{}, CarbonTime{}, WaitAwhile{}, WaitAwhileEst{}} {
		before := ctx.FastPathHits()
		p.Decide(longJob(3*simtime.Hour), 90, ctx)
		if ctx.FastPathHits() != before+1 {
			t.Errorf("%s: fast-path hits %d -> %d, want +1", p.Name(), before, ctx.FastPathHits())
		}
	}
}

// TestFastPathsAtTraceHorizonEdge pins the trace-horizon edge the oracle
// padding exists for: jobs arriving in the trace's final hour (and past the
// horizon) with the full 24 h window must decide identically with and
// without fast paths, where every slot query clamps to the last value.
func TestFastPathsAtTraceHorizonEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	values := make([]float64, 48)
	for i := range values {
		values[i] = 30 + 700*rng.Float64()
	}
	tr := carbon.MustTrace("edge", values)
	queues := map[workload.Queue]QueueInfo{
		workload.QueueShort: {MaxWait: 6 * simtime.Hour, AvgLength: 90 * simtime.Minute},
		workload.QueueLong:  {MaxWait: 24 * simtime.Hour, AvgLength: 5 * simtime.Hour},
	}
	ctxFast := &Context{CIS: carbon.NewPerfectService(tr), Queues: queues}
	ctxFast.EnableFastPaths()
	ctxRef := &Context{CIS: carbon.NewPerfectService(tr), Queues: queues}

	arrivals := []simtime.Time{
		47 * 60, 47*60 + 1, 47*60 + 30, 47*60 + 59, // final hour
		48 * 60, 48*60 + 30, 50*60 + 7, // past the horizon
	}
	for _, now := range arrivals {
		for _, length := range []simtime.Duration{simtime.Minute, 90 * simtime.Minute, 26 * simtime.Hour} {
			for _, q := range []workload.Queue{workload.QueueShort, workload.QueueLong} {
				job := workload.Job{ID: 1, Length: length, CPUs: 1, Queue: q}
				for _, p := range diffPolicies() {
					dFast := p.Decide(job, now, ctxFast)
					dRef := p.Decide(job, now, ctxRef)
					if !reflect.DeepEqual(dFast, dRef) {
						t.Fatalf("%s(queue=%d, len=%v, now=%v):\n fast = %+v\n ref  = %+v",
							p.Name(), q, length, now, dFast, dRef)
					}
				}
			}
		}
	}
	if ctxFast.FastPathHits() == 0 {
		t.Error("horizon-edge arrivals never hit the fast path")
	}
}

// TestDecideAllocationBudgets pins the steady-state allocation behaviour
// the oracle layer buys: zero per decision for every start-time policy,
// and exactly the returned plan for the suspend-resume ones.
func TestDecideAllocationBudgets(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	rng := rand.New(rand.NewSource(9))
	values := make([]float64, 72)
	for i := range values {
		values[i] = 30 + 700*rng.Float64()
	}
	ctx := testCtx(values, 90*simtime.Minute, 5*simtime.Hour)
	ctx.EnableFastPaths()
	job := longJob(5*simtime.Hour + 13*simtime.Minute)
	now := simtime.Time(90)
	budgets := []struct {
		p   Policy
		max float64
	}{
		{NoWait{}, 0},
		{AllWait{}, 0},
		{LowestSlot{}, 0},
		{LowestWindow{}, 0},
		{CarbonTime{}, 0},
		{WaitAwhile{}, 1},
		{WaitAwhileEst{}, 1},
		{Ecovisor{}, 1},
	}
	for _, b := range budgets {
		for i := 0; i < 3; i++ { // warm scratch buffers and rank caches
			b.p.Decide(job, now, ctx)
		}
		allocs := testing.AllocsPerRun(100, func() {
			b.p.Decide(job, now, ctx)
		})
		if allocs > b.max {
			t.Errorf("%s: %v allocs per Decide, budget %v", b.p.Name(), allocs, b.max)
		}
	}
}
