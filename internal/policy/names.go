package policy

import (
	"fmt"
	"sort"
	"strings"
)

// byTag maps the lower-case wire/CLI tag of every policy to its value.
// Tags are the stable external names (gaia-sim flags, scenario files, the
// serving API); Policy.Name returns the paper's display name instead.
var byTag = map[string]Policy{
	"nowait":          NoWait{},
	"allwait":         AllWait{},
	"lowest-slot":     LowestSlot{},
	"lowest-window":   LowestWindow{},
	"carbon-time":     CarbonTime{},
	"wait-awhile":     WaitAwhile{},
	"wait-awhile-est": WaitAwhileEst{},
	"ecovisor":        Ecovisor{},
}

// ByName resolves a policy tag (case-insensitive) to its implementation.
// It is the single parsing point shared by the CLI tools and the serving
// API, so every surface accepts exactly the same tags.
func ByName(name string) (Policy, error) {
	if p, ok := byTag[strings.ToLower(name)]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("policy: unknown policy %q (have %v)", name, Names())
}

// Names returns every accepted policy tag, sorted.
func Names() []string {
	out := make([]string, 0, len(byTag))
	for tag := range byTag {
		out = append(out, tag)
	}
	sort.Strings(out)
	return out
}
