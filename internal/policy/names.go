package policy

import (
	"fmt"
	"sort"
	"strings"
)

// byTag maps the lower-case wire/CLI tag of every policy to its value.
// Tags are the stable external names (gaia-sim flags, scenario files, the
// serving API); Policy.Name returns the paper's display name instead.
var byTag = map[string]Policy{
	"nowait":          NoWait{},
	"allwait":         AllWait{},
	"lowest-slot":     LowestSlot{},
	"lowest-window":   LowestWindow{},
	"carbon-time":     CarbonTime{},
	"wait-awhile":     WaitAwhile{},
	"wait-awhile-est": WaitAwhileEst{},
	"ecovisor":        Ecovisor{},
	"critical-path":   CriticalPathShift{},
}

// ByName resolves a policy tag (case-insensitive) to its implementation.
// It is the single parsing point shared by the CLI tools and the serving
// API, so every surface accepts exactly the same tags.
func ByName(name string) (Policy, error) {
	if p, ok := byTag[strings.ToLower(name)]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("policy: unknown policy %q (have %v)", name, Names())
}

// Names returns every accepted policy tag, sorted.
func Names() []string {
	out := make([]string, 0, len(byTag))
	for tag := range byTag {
		out = append(out, tag)
	}
	sort.Strings(out)
	return out
}

// allocatorByTag maps the lower-case CLI tag of every elastic allocator to
// its value, mirroring byTag for policies.
var allocatorByTag = map[string]ElasticAllocator{
	"static-min":      StaticAlloc{},
	"greedy-marginal": GreedyMarginal{},
}

// AllocatorByName resolves an elastic-allocator tag (case-insensitive),
// the single parsing point for gaia-sim and experiment configuration.
func AllocatorByName(name string) (ElasticAllocator, error) {
	if a, ok := allocatorByTag[strings.ToLower(name)]; ok {
		return a, nil
	}
	return nil, fmt.Errorf("policy: unknown allocator %q (have %v)", name, AllocatorNames())
}

// AllocatorNames returns every accepted allocator tag, sorted.
func AllocatorNames() []string {
	out := make([]string, 0, len(allocatorByTag))
	for tag := range allocatorByTag {
		out = append(out, tag)
	}
	sort.Strings(out)
	return out
}
