package accountdb

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

func sampleDB() *DB {
	db := &DB{}
	db.Append(
		Record{Run: "A", Region: "SA-AU", Queue: "short", User: "u01", CPUs: 1,
			ArrivalMin: 0, WaitingMin: 60, CarbonG: 100, BaselineCarbonG: 150,
			UsageCost: 2, OnDemandCPUH: 2},
		Record{Run: "A", Region: "SA-AU", Queue: "long", User: "u02", CPUs: 2,
			ArrivalMin: 500, WaitingMin: 120, CarbonG: 400, BaselineCarbonG: 400,
			UsageCost: 0, ReservedCPUH: 8},
		Record{Run: "B", Region: "SA-AU", Queue: "short", User: "u01", CPUs: 1,
			ArrivalMin: 900, WaitingMin: 0, CarbonG: 50, BaselineCarbonG: 150,
			UsageCost: 0.4, SpotCPUH: 2, Evictions: 1, WastedCPUH: 0.5},
	)
	return db
}

func TestSelectFilters(t *testing.T) {
	db := sampleDB()
	if got := len(db.Select(Filter{})); got != 3 {
		t.Errorf("all = %d", got)
	}
	if got := len(db.Select(Filter{Run: "A"})); got != 2 {
		t.Errorf("run A = %d", got)
	}
	if got := len(db.Select(Filter{Queue: "short", User: "u01"})); got != 2 {
		t.Errorf("short/u01 = %d", got)
	}
	if got := len(db.Select(Filter{ArrivedFrom: 400, ArrivedTo: 901})); got != 2 {
		t.Errorf("window = %d", got)
	}
	if got := len(db.Select(Filter{Region: "XX"})); got != 0 {
		t.Errorf("bad region = %d", got)
	}
}

func TestGroupAggregate(t *testing.T) {
	db := sampleDB()
	byRun, err := db.GroupAggregate(Filter{}, ByRun)
	if err != nil {
		t.Fatal(err)
	}
	if len(byRun) != 2 || byRun[0].Key != "A" || byRun[1].Key != "B" {
		t.Fatalf("byRun = %+v", byRun)
	}
	a := byRun[0]
	if a.Jobs != 2 || math.Abs(a.CarbonKg-0.5) > 1e-12 || math.Abs(a.SavedKg-0.05) > 1e-12 {
		t.Errorf("A aggregate = %+v", a)
	}
	if math.Abs(a.MeanWaitH-1.5) > 1e-12 {
		t.Errorf("A mean wait = %v", a.MeanWaitH)
	}
	if math.Abs(a.CPUHours-10) > 1e-12 || math.Abs(a.ReservedShare-0.8) > 1e-12 {
		t.Errorf("A shares = %+v", a)
	}
	b := byRun[1]
	if b.Evictions != 1 || math.Abs(b.SpotShare-1) > 1e-12 {
		t.Errorf("B aggregate = %+v", b)
	}
	byUser, err := db.GroupAggregate(Filter{}, ByUser)
	if err != nil || len(byUser) != 2 {
		t.Fatalf("byUser = %+v, %v", byUser, err)
	}
	if _, err := db.GroupAggregate(Filter{}, "bogus"); err == nil {
		t.Error("unknown key should error")
	}
	for _, by := range []string{ByRegion, ByWorkload, ByQueue} {
		if _, err := db.GroupAggregate(Filter{}, by); err != nil {
			t.Errorf("%s: %v", by, err)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := sampleDB()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded := &DB{}
	if err := loaded.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != db.Len() {
		t.Fatalf("round trip %d != %d", loaded.Len(), db.Len())
	}
	a, b := db.Select(Filter{}), loaded.Select(Filter{})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d mismatch:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"",
		"bad,header\n1,2\n",
		strings.Join(csvHeader, ",") + "\nA,r,w,x,short,u,1,0,0,0,0,1,1,1,1,1,1,0,0\n", // bad job id
	}
	for i, in := range cases {
		db := &DB{}
		if err := db.Load(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestAppendResultFromSimulation(t *testing.T) {
	vals := make([]float64, 48)
	for i := range vals {
		vals[i] = 100
	}
	tr := carbon.MustTrace("flat", vals)
	jobs := workload.MustTrace("wl", []workload.Job{
		{Arrival: 0, Length: simtime.Hour, CPUs: 1, User: "alice"},
		{Arrival: 10, Length: 2 * simtime.Hour, CPUs: 2, User: "bob"},
	})
	res, err := core.Run(core.Config{Policy: policy.NoWait{}, Carbon: tr, RetainJobs: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	db := &DB{}
	db.AppendResult(res)
	if db.Len() != 2 {
		t.Fatalf("records = %d", db.Len())
	}
	byUser, err := db.GroupAggregate(Filter{}, ByUser)
	if err != nil || len(byUser) != 2 {
		t.Fatalf("byUser = %+v, %v", byUser, err)
	}
	if byUser[0].Key != "alice" || byUser[1].Key != "bob" {
		t.Errorf("user keys = %v, %v", byUser[0].Key, byUser[1].Key)
	}
	if byUser[1].CPUHours != 4 {
		t.Errorf("bob cpuh = %v", byUser[1].CPUHours)
	}
}
