// Package accountdb is the scheduler's job-accounting store — the role
// SlurmDBD plays in the paper's architecture (§4.1): a durable record of
// every job's resource consumption extended with GAIA's carbon, cost and
// elasticity-overhead columns, with sacct-style filtering and group-by
// aggregation.
//
// The store is an append-only in-memory table with CSV persistence;
// multiple simulation runs append under distinct run labels and can be
// compared with one query.
package accountdb

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/metrics"
	"github.com/carbonsched/gaia/internal/simtime"
)

// Record is one finished job's accounting row.
type Record struct {
	Run      string // run label (policy/configuration)
	Region   string
	Workload string
	JobID    int
	Queue    string
	User     string
	CPUs     int

	ArrivalMin int64
	StartMin   int64
	FinishMin  int64
	WaitingMin int64

	CarbonG         float64
	BaselineCarbonG float64
	UsageCost       float64
	ReservedCPUH    float64
	OnDemandCPUH    float64
	SpotCPUH        float64
	Evictions       int
	WastedCPUH      float64
}

// DB is the accounting table. The zero value is an empty store.
type DB struct {
	records []Record
}

// Len returns the number of stored records.
func (db *DB) Len() int { return len(db.records) }

// Append adds records.
func (db *DB) Append(recs ...Record) { db.records = append(db.records, recs...) }

// AppendResult converts a simulator result into accounting rows and
// appends them under the result's label. It consumes the per-job records,
// so the run must have been configured with core.Config.RetainJobs; a
// streaming-mode result contributes no rows.
func (db *DB) AppendResult(res *metrics.Result) {
	for _, j := range res.Jobs {
		db.Append(Record{
			Run:             res.Label,
			Region:          res.Region,
			Workload:        res.Workload,
			JobID:           j.JobID,
			Queue:           j.Queue.String(),
			User:            j.User,
			CPUs:            j.CPUs,
			ArrivalMin:      int64(j.Arrival),
			StartMin:        int64(j.Start),
			FinishMin:       int64(j.Finish),
			WaitingMin:      int64(j.Waiting),
			CarbonG:         j.Carbon,
			BaselineCarbonG: j.BaselineCarbon,
			UsageCost:       j.UsageCost,
			ReservedCPUH:    j.CPUHours[cloud.Reserved],
			OnDemandCPUH:    j.CPUHours[cloud.OnDemand],
			SpotCPUH:        j.CPUHours[cloud.Spot],
			Evictions:       j.Evictions,
			WastedCPUH:      j.WastedCPUHours,
		})
	}
}

// Filter selects records; zero fields match everything.
type Filter struct {
	Run, Region, Workload, Queue, User string
	// ArrivedFrom/ArrivedTo bound the arrival minute (To exclusive,
	// 0 = unbounded).
	ArrivedFrom, ArrivedTo int64
}

func (f Filter) matches(r Record) bool {
	if f.Run != "" && r.Run != f.Run {
		return false
	}
	if f.Region != "" && r.Region != f.Region {
		return false
	}
	if f.Workload != "" && r.Workload != f.Workload {
		return false
	}
	if f.Queue != "" && r.Queue != f.Queue {
		return false
	}
	if f.User != "" && r.User != f.User {
		return false
	}
	if f.ArrivedFrom != 0 && r.ArrivalMin < f.ArrivedFrom {
		return false
	}
	if f.ArrivedTo != 0 && r.ArrivalMin >= f.ArrivedTo {
		return false
	}
	return true
}

// Select returns matching records in insertion order.
func (db *DB) Select(f Filter) []Record {
	var out []Record
	for _, r := range db.records {
		if f.matches(r) {
			out = append(out, r)
		}
	}
	return out
}

// Aggregate is a sacct-style summary of a record group.
type Aggregate struct {
	Key           string
	Jobs          int
	CPUHours      float64
	CarbonKg      float64
	SavedKg       float64 // baseline − actual
	UsageCost     float64
	MeanWaitH     float64
	Evictions     int
	WastedCPUH    float64
	SpotShare     float64 // spot CPU·h / total CPU·h
	ReservedShare float64
}

// GroupBy standard keys.
const (
	ByRun      = "run"
	ByQueue    = "queue"
	ByUser     = "user"
	ByRegion   = "region"
	ByWorkload = "workload"
)

// keyOf extracts the group key.
func keyOf(by string, r Record) (string, error) {
	switch by {
	case ByRun:
		return r.Run, nil
	case ByQueue:
		return r.Queue, nil
	case ByUser:
		return r.User, nil
	case ByRegion:
		return r.Region, nil
	case ByWorkload:
		return r.Workload, nil
	default:
		return "", fmt.Errorf("accountdb: unknown group key %q", by)
	}
}

// GroupAggregate filters then aggregates by the given key, returning
// groups sorted by key.
func (db *DB) GroupAggregate(f Filter, by string) ([]Aggregate, error) {
	groups := map[string]*Aggregate{}
	var waitSums map[string]float64 = map[string]float64{}
	for _, r := range db.records {
		if !f.matches(r) {
			continue
		}
		key, err := keyOf(by, r)
		if err != nil {
			return nil, err
		}
		g := groups[key]
		if g == nil {
			g = &Aggregate{Key: key}
			groups[key] = g
		}
		total := r.ReservedCPUH + r.OnDemandCPUH + r.SpotCPUH
		g.Jobs++
		g.CPUHours += total
		g.CarbonKg += r.CarbonG / 1000
		g.SavedKg += (r.BaselineCarbonG - r.CarbonG) / 1000
		g.UsageCost += r.UsageCost
		g.Evictions += r.Evictions
		g.WastedCPUH += r.WastedCPUH
		g.SpotShare += r.SpotCPUH
		g.ReservedShare += r.ReservedCPUH
		waitSums[key] += simtime.Duration(r.WaitingMin).Hours()
	}
	out := make([]Aggregate, 0, len(groups))
	for key, g := range groups {
		if g.Jobs > 0 {
			g.MeanWaitH = waitSums[key] / float64(g.Jobs)
		}
		if g.CPUHours > 0 {
			g.SpotShare /= g.CPUHours
			g.ReservedShare /= g.CPUHours
		}
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

var csvHeader = []string{
	"run", "region", "workload", "job_id", "queue", "user", "cpus",
	"arrival_min", "start_min", "finish_min", "waiting_min",
	"carbon_g", "baseline_carbon_g", "usage_cost",
	"reserved_cpuh", "ondemand_cpuh", "spot_cpuh", "evictions", "wasted_cpuh",
}

// Save writes the whole table as CSV.
func (db *DB) Save(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("accountdb: writing header: %w", err)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
	for _, r := range db.records {
		rec := []string{
			r.Run, r.Region, r.Workload,
			strconv.Itoa(r.JobID), r.Queue, r.User, strconv.Itoa(r.CPUs),
			strconv.FormatInt(r.ArrivalMin, 10),
			strconv.FormatInt(r.StartMin, 10),
			strconv.FormatInt(r.FinishMin, 10),
			strconv.FormatInt(r.WaitingMin, 10),
			f(r.CarbonG), f(r.BaselineCarbonG), f(r.UsageCost),
			f(r.ReservedCPUH), f(r.OnDemandCPUH), f(r.SpotCPUH),
			strconv.Itoa(r.Evictions), f(r.WastedCPUH),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("accountdb: writing record: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Load reads a table written by Save, appending to the store.
func (db *DB) Load(r io.Reader) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	rows, err := cr.ReadAll()
	if err != nil {
		return fmt.Errorf("accountdb: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return fmt.Errorf("accountdb: empty file")
	}
	for i, row := range rows[1:] {
		rec, err := parseRow(row)
		if err != nil {
			return fmt.Errorf("accountdb: row %d: %w", i+1, err)
		}
		db.records = append(db.records, rec)
	}
	return nil
}

func parseRow(row []string) (Record, error) {
	var r Record
	var errs []error
	pInt := func(s string) int {
		v, err := strconv.Atoi(s)
		errs = append(errs, err)
		return v
	}
	pI64 := func(s string) int64 {
		v, err := strconv.ParseInt(s, 10, 64)
		errs = append(errs, err)
		return v
	}
	pF := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		errs = append(errs, err)
		return v
	}
	r.Run, r.Region, r.Workload = row[0], row[1], row[2]
	r.JobID = pInt(row[3])
	r.Queue, r.User = row[4], row[5]
	r.CPUs = pInt(row[6])
	r.ArrivalMin = pI64(row[7])
	r.StartMin = pI64(row[8])
	r.FinishMin = pI64(row[9])
	r.WaitingMin = pI64(row[10])
	r.CarbonG = pF(row[11])
	r.BaselineCarbonG = pF(row[12])
	r.UsageCost = pF(row[13])
	r.ReservedCPUH = pF(row[14])
	r.OnDemandCPUH = pF(row[15])
	r.SpotCPUH = pF(row[16])
	r.Evictions = pInt(row[17])
	r.WastedCPUH = pF(row[18])
	for _, err := range errs {
		if err != nil {
			return Record{}, err
		}
	}
	return r, nil
}
