// Package geo adds spatial workload shifting across geo-distributed
// regions — the future work the paper defers ("Spatial batch scheduling
// across geo-distributed clusters is left for future research", §2.1).
//
// Each arriving job is placed in the candidate region where the
// scheduling policy's own temporal decision yields the lowest forecast
// carbon, then each region's cluster runs the GAIA-Simulator over its
// share. Data-gravity and transfer costs are out of scope (as in the
// related spatial-shifting work the paper cites); the model answers the
// pure question of how much carbon region choice adds over temporal
// shifting alone.
package geo

import (
	"errors"
	"fmt"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/metrics"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// Config describes a multi-region deployment. Per-region cluster knobs
// (pricing, queues, horizon) follow core.Config defaults.
type Config struct {
	// Policy is the temporal policy applied inside every region.
	Policy policy.Policy
	// Regions are the candidate carbon traces (their Region() labels the
	// clusters).
	Regions []*carbon.Trace
	// ShortMax / WaitShort / WaitLong configure the queues, as in
	// core.Config (zero = paper defaults).
	ShortMax            simtime.Duration
	WaitShort, WaitLong simtime.Duration
	// Horizon is the accounting horizon (0 = shortest region horizon).
	Horizon simtime.Duration
}

// Result aggregates a multi-region run.
type Result struct {
	// PerRegion holds each region's cluster result (possibly with zero
	// jobs when the region never wins a placement).
	PerRegion []*metrics.Result
	// Assignments maps job ID → region index.
	Assignments map[int]int
}

// TotalCarbon returns emissions across regions in grams.
func (r *Result) TotalCarbon() float64 {
	var total float64
	for _, res := range r.PerRegion {
		total += res.TotalCarbon()
	}
	return total
}

// TotalCost sums cluster costs across regions.
func (r *Result) TotalCost() float64 {
	var total float64
	for _, res := range r.PerRegion {
		total += res.TotalCost()
	}
	return total
}

// MeanWaiting returns the job-weighted mean waiting time.
func (r *Result) MeanWaiting() simtime.Duration {
	var total simtime.Duration
	var n int
	for _, res := range r.PerRegion {
		total += res.TotalWaiting()
		n += res.JobCount()
	}
	if n == 0 {
		return 0
	}
	return total / simtime.Duration(n)
}

// JobShare returns the fraction of jobs placed in each region.
func (r *Result) JobShare() []float64 {
	shares := make([]float64, len(r.PerRegion))
	var n int
	for i, res := range r.PerRegion {
		shares[i] = float64(res.JobCount())
		n += res.JobCount()
	}
	if n > 0 {
		for i := range shares {
			shares[i] /= float64(n)
		}
	}
	return shares
}

// Run places every job spatially and simulates each region's cluster.
func Run(cfg Config, jobs *workload.Trace) (*Result, error) {
	if cfg.Policy == nil {
		return nil, errors.New("geo: config needs a policy")
	}
	if len(cfg.Regions) == 0 {
		return nil, errors.New("geo: config needs at least one region")
	}
	if cfg.ShortMax == 0 {
		cfg.ShortMax = 2 * simtime.Hour
	}
	if cfg.WaitShort == 0 {
		cfg.WaitShort = 6 * simtime.Hour
	}
	if cfg.WaitLong == 0 {
		cfg.WaitLong = 24 * simtime.Hour
	}

	trace := workload.MustTrace(jobs.Name, jobs.Jobs)
	trace.AssignQueues(cfg.ShortMax)

	// Per-region policy contexts (queue averages come from the full
	// trace: the per-queue length statistics are region-independent).
	contexts := make([]*policy.Context, len(cfg.Regions))
	for i, tr := range cfg.Regions {
		contexts[i] = &policy.Context{
			CIS: carbon.NewPerfectService(tr),
			Queues: map[workload.Queue]policy.QueueInfo{
				workload.QueueShort: {MaxWait: cfg.WaitShort, AvgLength: trace.MeanLengthByQueue(workload.QueueShort)},
				workload.QueueLong:  {MaxWait: cfg.WaitLong, AvgLength: trace.MeanLengthByQueue(workload.QueueLong)},
			},
		}
		// The placement loop probes every region's context per job;
		// answering from the oracle tables makes that loop O(regions).
		contexts[i].EnableFastPaths()
	}

	// Spatial placement: the region whose temporal decision forecasts
	// the least carbon for this job wins it.
	assignments := make(map[int]int, trace.Len())
	perRegionJobs := make([][]workload.Job, len(cfg.Regions))
	for _, job := range trace.Jobs {
		best, bestCarbon := 0, 0.0
		for i, ctx := range contexts {
			d := cfg.Policy.Decide(job, job.Arrival, ctx)
			c := decisionCarbon(ctx.CIS, d, job)
			if i == 0 || c < bestCarbon {
				best, bestCarbon = i, c
			}
		}
		assignments[job.ID] = best
		perRegionJobs[best] = append(perRegionJobs[best], job)
	}

	out := &Result{Assignments: assignments, PerRegion: make([]*metrics.Result, len(cfg.Regions))}
	for i, tr := range cfg.Regions {
		sub, err := workload.NewTrace(fmt.Sprintf("%s@%s", trace.Name, tr.Region()), perRegionJobs[i])
		if err != nil {
			return nil, err
		}
		res, err := core.Run(core.Config{
			Policy:    cfg.Policy,
			Carbon:    tr,
			ShortMax:  cfg.ShortMax,
			WaitShort: cfg.WaitShort,
			WaitLong:  cfg.WaitLong,
			Horizon:   cfg.Horizon,
		}, sub)
		if err != nil {
			return nil, err
		}
		out.PerRegion[i] = res
	}
	return out, nil
}

// decisionCarbon forecasts the carbon of executing the decision, using
// the job's true length only for the (simulator-side) integral bounds —
// the ranking across regions is what matters.
func decisionCarbon(cis carbon.Service, d policy.Decision, job workload.Job) float64 {
	if !d.IsPlan() {
		return cis.ForecastIntegral(job.Arrival, simtime.Interval{Start: d.Start, End: d.Start.Add(job.Length)})
	}
	var total float64
	var covered simtime.Duration
	for _, iv := range d.Plan {
		if covered >= job.Length {
			break
		}
		if iv.Len() > job.Length-covered {
			iv.End = iv.Start.Add(job.Length - covered)
		}
		total += cis.ForecastIntegral(job.Arrival, iv)
		covered += iv.Len()
	}
	return total
}
