package geo

import (
	"math/rand"
	"testing"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

func flat(region string, hours int, ci float64) *carbon.Trace {
	vals := make([]float64, hours)
	for i := range vals {
		vals[i] = ci
	}
	return carbon.MustTrace(region, vals)
}

func TestValidation(t *testing.T) {
	jobs := workload.MustTrace("j", nil)
	if _, err := Run(Config{Regions: []*carbon.Trace{flat("a", 10, 1)}}, jobs); err == nil {
		t.Error("missing policy should error")
	}
	if _, err := Run(Config{Policy: policy.NoWait{}}, jobs); err == nil {
		t.Error("missing regions should error")
	}
}

func TestAllJobsGoToCleanRegion(t *testing.T) {
	dirty := flat("dirty", 24*9, 900)
	clean := flat("clean", 24*9, 50)
	jobs := workload.MustTrace("j", []workload.Job{
		{Arrival: 0, Length: simtime.Hour, CPUs: 1},
		{Arrival: 100, Length: 3 * simtime.Hour, CPUs: 2},
	})
	res, err := Run(Config{
		Policy:  policy.CarbonTime{},
		Regions: []*carbon.Trace{dirty, clean},
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for id, region := range res.Assignments {
		if region != 1 {
			t.Errorf("job %d placed in dirty region", id)
		}
	}
	shares := res.JobShare()
	if shares[0] != 0 || shares[1] != 1 {
		t.Errorf("shares = %v", shares)
	}
	if res.PerRegion[0].JobCount() != 0 || res.PerRegion[1].JobCount() != 2 {
		t.Error("per-region job counts wrong")
	}
}

func TestSpatialNeverWorseThanSingleRegion(t *testing.T) {
	// Adding candidate regions can only reduce the forecast-optimal
	// carbon of each job; total carbon must not exceed the best single
	// region's run.
	regions := []*carbon.Trace{
		carbon.RegionSAAU.Generate(24*12, 1),
		carbon.RegionONCA.Generate(24*12, 2),
		carbon.RegionKYUS.Generate(24*12, 3),
	}
	jobs := workload.AlibabaPAIWeek().GenerateByCount(rand.New(rand.NewSource(4)), 150, simtime.Week)
	multi, err := Run(Config{Policy: policy.CarbonTime{}, Regions: regions}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range regions {
		single, err := core.Run(core.Config{Policy: policy.CarbonTime{}, Carbon: tr}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if multi.TotalCarbon() > single.TotalCarbon()+1e-6 {
			t.Errorf("spatial %v worse than single region %s %v",
				multi.TotalCarbon(), tr.Region(), single.TotalCarbon())
		}
	}
	if multi.MeanWaiting() < 0 {
		t.Error("negative waiting")
	}
	if multi.TotalCost() <= 0 {
		t.Error("cost should be positive")
	}
}

func TestPlanPoliciesSupported(t *testing.T) {
	regions := []*carbon.Trace{
		carbon.RegionSAAU.Generate(24*10, 5),
		carbon.RegionSE.Generate(24*10, 6),
	}
	jobs := workload.MustTrace("j", []workload.Job{
		{Arrival: 0, Length: 2 * simtime.Hour, CPUs: 1},
		{Arrival: 50, Length: 5 * simtime.Hour, CPUs: 1},
	})
	res, err := Run(Config{Policy: policy.WaitAwhile{}, Regions: regions}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range res.PerRegion {
		total += r.JobCount()
	}
	if total != 2 {
		t.Errorf("jobs executed = %d", total)
	}
}

func TestEmptyWorkload(t *testing.T) {
	res, err := Run(Config{
		Policy:  policy.NoWait{},
		Regions: []*carbon.Trace{flat("a", 10, 100)},
	}, workload.MustTrace("empty", nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCarbon() != 0 || res.MeanWaiting() != 0 {
		t.Error("empty workload should be zero")
	}
	if s := res.JobShare(); s[0] != 0 {
		t.Errorf("shares = %v", s)
	}
}
